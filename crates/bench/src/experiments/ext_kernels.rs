//! Extension exhibit: ext_kernels. `BETTY_PROFILE=quick` shrinks it.
//!
//! Scalar-vs-SIMD throughput of the runtime-dispatched compute backend,
//! plus the end-to-end training payoff, with the numerics contract
//! asserted rather than assumed:
//!
//! 1. **Kernel throughput** (`BENCH_kernels.json`) — GFLOP/s of the
//!    dense matmul family, the fused gather+segment-reduce aggregation
//!    kernel, and the vectorized Adam step, each measured under
//!    `Backend::Scalar` and `Backend::Simd` at 1 and 4 worker threads.
//!    The SIMD path must clear [`MIN_KERNEL_SPEEDUP`] on every row (the
//!    committed artifact shows ≥ 2× for matmul and the fused kernel at
//!    both thread counts on an AVX-512 host; the assertion floor is
//!    deliberately lower so slower CI steppings fail loudly only on real
//!    regressions, not on turbo-bin variance).
//! 2. **Bit-identity** — every kernel's f32 output must match the scalar
//!    reference bit-for-bit before a throughput row is accepted: the
//!    backend is a speed knob, not a numerics knob.
//! 3. **End-to-end** (`BENCH_kernels_epoch.json`) — steady-state epoch
//!    time of a power-law-graph training run under each backend, same
//!    seed. Per-epoch losses must be bit-identical; the SIMD run must be
//!    faster by [`MIN_EPOCH_SPEEDUP`].

use std::time::Instant;

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_data::DatasetSpec;
use betty_tensor::{kernels, segment, with_backend, Backend, Tensor};

use crate::report::Table;
use crate::Profile;

/// Per-row assertion floor for simd/scalar throughput of the
/// compute-bound kernels (the matmul family and the fused
/// gather+segment kernel). The real numbers on an AVX-512 host are
/// ≥ 2×; the floor is deliberately lower so slower CI steppings fail
/// loudly only on real regressions, not on turbo-bin variance.
pub const MIN_KERNEL_SPEEDUP: f64 = 1.2;

/// Floor for the Adam step, which is memory-bound (four streams per
/// value), so vectorization buys little beyond saturating bandwidth;
/// the assertion only guards against the simd path regressing.
pub const MIN_ADAM_SPEEDUP: f64 = 1.0;

/// Required end-to-end epoch-time speedup of simd over scalar.
pub const MIN_EPOCH_SPEEDUP: f64 = 1.05;

/// One timed kernel invocation set: best-of-`reps` wall seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn dense(rows: usize, cols: usize, phase: f32) -> Tensor {
    Tensor::from_vec(
        (0..rows * cols)
            .map(|i| ((i as f32) * 0.37 + phase).sin())
            .collect(),
        &[rows, cols],
    )
    .unwrap()
}

struct KernelCase {
    name: &'static str,
    shape: String,
    /// Total floating-point operations of one invocation.
    flops: f64,
    /// Per-case simd/scalar speedup floor.
    min_speedup: f64,
    /// Runs the kernel once into the scratch buffer and returns the
    /// output slice for bit-identity checking.
    run: Box<dyn FnMut() -> Vec<f32>>,
}

/// The kernel suite at bench shapes: 128-class feature widths and a
/// CSR-sorted (destination-major) edge list, the shapes the trainer's
/// aggregation and dense layers actually run.
fn kernel_cases(profile: Profile) -> Vec<KernelCase> {
    let scale = match profile {
        Profile::Quick => 4,
        Profile::Full => 1,
    };
    let mut cases = Vec::new();

    // Dense layer shapes: activations [n, d] × weights [d, o].
    let (m, k, n) = (2048 / scale, 128, 128);
    let a = dense(m, k, 0.0);
    let b = dense(k, n, 1.0);
    let mut out = vec![0.0f32; m * n];
    cases.push(KernelCase {
        name: "matmul",
        shape: format!("{m}x{k}x{n}"),
        flops: 2.0 * (m * k * n) as f64,
        min_speedup: MIN_KERNEL_SPEEDUP,
        run: Box::new(move || {
            out.iter_mut().for_each(|v| *v = 0.0);
            kernels::matmul_into(&a, &b, &mut out);
            out.clone()
        }),
    });

    let a = dense(m, k, 0.0);
    let b = dense(n, k, 1.0); // transposed operand
    let mut out = vec![0.0f32; m * n];
    cases.push(KernelCase {
        name: "matmul_a_bt",
        shape: format!("{m}x{k}x{n}"),
        flops: 2.0 * (m * k * n) as f64,
        min_speedup: MIN_KERNEL_SPEEDUP,
        run: Box::new(move || {
            out.iter_mut().for_each(|v| *v = 0.0);
            kernels::matmul_a_bt_into(&a, &b, &mut out);
            out.clone()
        }),
    });

    // Fused gather + segment-sum at aggregation shapes: E edges gathering
    // rows of a [rows, 128] feature table into CSR-sorted segments.
    let (rows, cols, n_segments, n_edges) = (2048 / scale, 128, 256 / scale, 1_000_000 / scale);
    let src = dense(rows, cols, 2.0);
    let gather_ids: Vec<usize> = (0..n_edges).map(|e| (e * 7919) % rows).collect();
    let mut segment_ids: Vec<usize> = (0..n_edges).map(|e| (e * 104_729) % n_segments).collect();
    segment_ids.sort_unstable();
    let mut out = vec![0.0f32; n_segments * cols];
    cases.push(KernelCase {
        name: "fused_gather_segment",
        shape: format!("E={n_edges} {rows}x{cols} seg={n_segments}"),
        flops: (n_edges * cols) as f64,
        min_speedup: MIN_KERNEL_SPEEDUP,
        run: Box::new(move || {
            out.iter_mut().for_each(|v| *v = 0.0);
            segment::fused_gather_segment_sum_into(&src, &gather_ids, &segment_ids, &mut out);
            out.clone()
        }),
    });

    // Adam at a realistic parameter-tensor length. ~12 flops/value
    // (moment updates, bias correction, sqrt, divide); the constant only
    // scales the GFLOP/s label, the speedup column is a pure time ratio.
    let len = 1 << 20 >> (scale / 4);
    let grad: Vec<f32> = (0..len).map(|i| ((i as f32) * 0.11).cos()).collect();
    let mut value = vec![0.0f32; len];
    let mut m1 = vec![0.0f32; len];
    let mut m2 = vec![0.0f32; len];
    cases.push(KernelCase {
        name: "adam_step",
        shape: format!("{len} values"),
        flops: 12.0 * len as f64,
        min_speedup: MIN_ADAM_SPEEDUP,
        run: Box::new(move || {
            value.iter_mut().for_each(|v| *v = 1.0);
            m1.iter_mut().for_each(|v| *v = 0.0);
            m2.iter_mut().for_each(|v| *v = 0.0);
            kernels::adam_step(
                &mut value,
                &grad,
                &mut m1,
                &mut m2,
                kernels::AdamCoeffs {
                    lr: 1e-3,
                    beta1: 0.9,
                    beta2: 0.999,
                    eps: 1e-8,
                    bias1: 0.1,
                    bias2: 1e-3,
                },
            );
            value.clone()
        }),
    });

    cases
}

fn kernel_table(profile: Profile) {
    let reps = match profile {
        Profile::Quick => 5,
        Profile::Full => 15,
    };
    let mut table = Table::new(
        "BENCH_kernels",
        "ext: scalar vs simd kernel throughput (bit-identical f32)",
        &[
            "kernel",
            "shape",
            "threads",
            "scalar GFLOP/s",
            "simd GFLOP/s",
            "speedup",
        ],
    );
    for mut case in kernel_cases(profile) {
        for threads in [1usize, 4] {
            betty_runtime::set_thread_override(Some(threads));
            let reference = with_backend(Backend::Scalar, || (case.run)());
            let simd_out = with_backend(Backend::Simd, || (case.run)());
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                simd_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{} at {} threads: simd must be bit-identical to scalar",
                case.name,
                threads
            );
            let scalar_sec = best_of(reps, || {
                with_backend(Backend::Scalar, || {
                    (case.run)();
                })
            });
            let simd_sec = best_of(reps, || {
                with_backend(Backend::Simd, || {
                    (case.run)();
                })
            });
            let speedup = scalar_sec / simd_sec;
            assert!(
                speedup >= case.min_speedup,
                "{} at {} threads: simd speedup {:.2}x below the {:.2}x floor",
                case.name,
                threads,
                speedup,
                case.min_speedup
            );
            table.row(vec![
                case.name.to_string(),
                case.shape.clone(),
                threads.to_string(),
                format!("{:.2}", case.flops / scalar_sec / 1e9),
                format!("{:.2}", case.flops / simd_sec / 1e9),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    betty_runtime::set_thread_override(None);
    table.finish();
}

/// One steady-state training measurement under a pinned backend: plan
/// once, warm up one epoch, then time `epochs` epochs over the same
/// micro-batches.
fn epoch_time(ds: &betty_data::Dataset, backend: Backend, epochs: usize) -> (f64, Vec<u64>) {
    with_backend(backend, || {
        let config = ExperimentConfig {
            fanouts: vec![5, 10],
            hidden_dim: 64,
            dropout: 0.0,
            ..ExperimentConfig::default()
        };
        let mut runner = Runner::new(ds, &config, 0);
        let batch = runner.sample_full_batch(ds);
        let micros = runner
            .plan_fixed(&batch, StrategyKind::Betty, 4)
            .micro_batches;
        runner
            .train_micro_batches(ds, &micros)
            .expect("default capacity fits the bench batch");
        let mut losses = Vec::new();
        let t0 = Instant::now();
        for _ in 0..epochs {
            let stats = runner
                .train_micro_batches(ds, &micros)
                .expect("warmed epoch must fit");
            losses.push(stats.loss.to_bits());
        }
        (t0.elapsed().as_secs_f64() / epochs as f64, losses)
    })
}

fn epoch_table(profile: Profile) {
    let ds = DatasetSpec::reddit()
        .scaled(match profile {
            Profile::Quick => 0.002,
            Profile::Full => 0.01,
        })
        .with_feature_dim(128)
        .generate(7);
    let epochs = profile.epochs(6);
    let (scalar_sec, scalar_losses) = epoch_time(&ds, Backend::Scalar, epochs);
    let (simd_sec, simd_losses) = epoch_time(&ds, Backend::Simd, epochs);
    assert_eq!(
        scalar_losses, simd_losses,
        "f32 training losses must be bit-identical across backends"
    );
    let speedup = scalar_sec / simd_sec;
    assert!(
        speedup >= MIN_EPOCH_SPEEDUP,
        "end-to-end simd speedup {speedup:.2}x below the {MIN_EPOCH_SPEEDUP:.2}x floor"
    );
    let mut table = Table::new(
        "BENCH_kernels_epoch",
        "ext: end-to-end epoch time, scalar vs simd (losses bit-identical)",
        &[
            "dataset",
            "epochs",
            "scalar s/epoch",
            "simd s/epoch",
            "speedup",
        ],
    );
    table.row(vec![
        format!("{} ({} nodes)", ds.name, ds.num_nodes()),
        epochs.to_string(),
        format!("{scalar_sec:.3}"),
        format!("{simd_sec:.3}"),
        format!("{speedup:.2}x"),
    ]);
    table.finish();
}

/// Runs the exhibit.
pub fn run(profile: Profile) {
    kernel_table(profile);
    epoch_table(profile);
}

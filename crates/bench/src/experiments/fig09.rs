//! Figure 9: (a) the in-degree distribution of destination nodes — a power
//! law whose clamped tail makes DGL's last in-degree bucket explode — and
//! (b) the per-bucket node counts of two REG micro-batches, showing the
//! tail bucket is where the imbalance lives.

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_device::gib;
use betty_graph::degree;
use betty_nn::AggregatorSpec;

use crate::presets::bench_dataset;
use crate::report::Table;
use crate::Profile;

const MAX_BUCKET: usize = 10;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let ds = bench_dataset("ogbn-arxiv", profile);
    let config = ExperimentConfig {
        // Large fanout so true in-degrees (and the long tail) survive
        // sampling.
        fanouts: vec![usize::MAX],
        hidden_dim: 32,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        capacity_bytes: gib(24),
        ..ExperimentConfig::default()
    };
    let mut runner = Runner::new(&ds, &config, 0);
    let batch = runner.sample_full_batch(&ds);
    let top = batch.blocks().last().expect("non-empty batch");

    // (a) full-batch destination in-degree histogram, clamped at 10.
    let degs = degree::block_in_degrees(top);
    let hist = degree::bucketed_histogram(&degs, MAX_BUCKET);
    let slope = degree::log_log_slope(&degree::histogram(&degs));
    let mut table_a = Table::new(
        "fig09a",
        &format!(
            "destination in-degree buckets (log-log slope {:.2})",
            slope.unwrap_or(f64::NAN)
        ),
        &["bucket (in-degree)", "nodes"],
    );
    for (d, &count) in hist.iter().enumerate() {
        let label = if d == MAX_BUCKET {
            format!(">={d}")
        } else {
            d.to_string()
        };
        table_a.row(vec![label, count.to_string()]);
    }
    table_a.finish();

    // (b) the same buckets for two REG micro-batches.
    let plan = runner.plan_fixed(&batch, StrategyKind::Betty, 2);
    let mut table_b = Table::new(
        "fig09b",
        "per-bucket destination counts of two REG micro-batches",
        &["bucket", "micro-batch 0", "micro-batch 1", "imbalance"],
    );
    let hists: Vec<Vec<usize>> = plan
        .micro_batches
        .iter()
        .map(|mb| {
            let block = mb.blocks().last().expect("non-empty");
            degree::bucketed_histogram(&degree::block_in_degrees(block), MAX_BUCKET)
        })
        .collect();
    for d in 0..=MAX_BUCKET {
        let a = hists.first().and_then(|h| h.get(d)).copied().unwrap_or(0);
        let b = hists.get(1).and_then(|h| h.get(d)).copied().unwrap_or(0);
        let imb = if a.min(b) == 0 {
            "-".to_string()
        } else {
            format!("{:.0}%", (a.max(b) as f64 / a.min(b) as f64 - 1.0) * 100.0)
        };
        let label = if d == MAX_BUCKET {
            format!(">={d}")
        } else {
            d.to_string()
        };
        table_b.row(vec![label, a.to_string(), b.to_string(), imb]);
    }
    table_b.finish();
}

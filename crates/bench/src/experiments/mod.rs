//! One module per paper exhibit. Every `run(profile)` prints the exhibit's
//! table(s) and writes JSON rows under `experiments_out/`.

pub mod ablation;
pub mod ext_alloc;
pub mod ext_elastic;
pub mod ext_featurestore;
pub mod ext_kernels;
pub mod ext_multi_gpu;
pub mod ext_overhead;
pub mod ext_pipeline;
pub mod ext_plan_ahead;
pub mod ext_recovery;
pub mod ext_storage_chaos;
pub mod ext_trace;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14_15_16;
pub mod table2;
pub mod table5;
pub mod table6;
pub mod table7;

use crate::Profile;

/// Runs every exhibit in paper order (used by `cargo bench --bench paper`).
pub fn run_all(profile: Profile) {
    fig02::run(profile);
    fig03::run(profile);
    fig04::run(profile);
    table2::run(profile);
    fig09::run(profile);
    fig10::run(profile);
    fig11::run(profile);
    fig12::run(profile);
    fig13::run(profile);
    fig14_15_16::run(profile);
    table5::run(profile);
    table6::run(profile);
    table7::run(profile);
    ablation::run(profile);
    ext_multi_gpu::run(profile);
    ext_elastic::run(profile);
    ext_overhead::run(profile);
    ext_pipeline::run(profile);
    ext_plan_ahead::run(profile);
    ext_recovery::run(profile);
    ext_trace::run(profile);
    ext_alloc::run(profile);
    ext_featurestore::run(profile);
    ext_storage_chaos::run(profile);
    ext_kernels::run(profile);
}

//! Extension exhibit: the `betty-trace` observability layer.
//!
//! Two claims are exercised end to end and persisted as
//! `experiments_out/BENCH_trace.json`:
//!
//! 1. **Zero-cost when disabled** — a traced run and an untraced run of
//!    the same seed produce bit-identical losses (tracing only adds
//!    bookkeeping, never math). The `loss match` column records the
//!    comparison.
//! 2. **Estimator admissibility** — for the fused Mean/Sum aggregators
//!    (dropout 0, where the analytical model of Eq. 5 covers every taped
//!    value), the per-micro-batch drift records must show
//!    `estimated_peak ≥ measured_peak`: the drift ratio
//!    (measured/estimated) stays ≤ 1.0, so a plan that "fits" really
//!    fits. The worst ratio per configuration lands in the JSON artifact.
//!
//! The exported JSONL trace is also schema-checked with the dependency-free
//! validator (`betty::validate_jsonl`) — the same check CI's trace-smoke
//! job applies to the artifact.

use betty::{ExperimentConfig, Runner, SpanKind, StrategyKind};
use betty_nn::AggregatorSpec;

use crate::presets::bench_dataset;
use crate::report::Table;
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let ds = bench_dataset("ogbn-arxiv", profile);
    let epochs = profile.epochs(4);
    let k = 4usize;

    let mut table = Table::new(
        "BENCH_trace",
        "trace overhead and estimator drift (measured/estimated peak per micro-batch)",
        &[
            "aggregator",
            "epochs",
            "steps",
            "est peak MiB",
            "meas peak MiB",
            "drift ratio",
            "admissible",
            "loss match",
        ],
    );

    let mut combined_jsonl = String::new();
    for aggregator in [AggregatorSpec::Mean, AggregatorSpec::Sum] {
        let config = ExperimentConfig {
            fanouts: vec![5, 10],
            hidden_dim: 32,
            aggregator,
            // Dropout tapes mask tensors the analytical model deliberately
            // excludes; the admissibility claim is for the modelled
            // configuration.
            dropout: 0.0,
            ..ExperimentConfig::default()
        };
        let mut traced = Runner::new(&ds, &config, 0);
        traced.enable_tracing();
        let mut plain = Runner::new(&ds, &config, 0);
        let mut traced_bits = 0u64;
        let mut plain_bits = 0u64;
        let mut est_peak = 0usize;
        let mut meas_peak = 0usize;
        let mut drift = 0.0f64;
        let mut total_steps = 0usize;
        for _ in 0..epochs {
            let a = traced
                .train_epoch_betty(&ds, StrategyKind::Betty, k)
                .expect("default capacity fits the bench batch");
            let b = plain
                .train_epoch_betty(&ds, StrategyKind::Betty, k)
                .expect("default capacity fits the bench batch");
            traced_bits = a.loss.to_bits();
            plain_bits = b.loss.to_bits();
            est_peak = est_peak.max(a.estimated_peak_bytes);
            meas_peak = meas_peak.max(a.max_peak_bytes);
            drift = drift.max(a.estimator_drift);
            total_steps += a.num_steps;
        }
        assert_eq!(
            traced_bits, plain_bits,
            "tracing must not change the training math ({aggregator:?})"
        );

        let trace = traced.take_trace().expect("tracing was enabled");
        assert_eq!(trace.drift_records().len(), total_steps);
        for d in trace.drift_records() {
            assert!(
                d.admissible(),
                "{aggregator:?} estimate must be admissible: step {} estimated {} < measured {}",
                d.step,
                d.estimated_bytes,
                d.measured_bytes
            );
        }
        assert!(
            trace
                .spans()
                .iter()
                .any(|s| s.kind == SpanKind::Partition),
            "epoch-level spans must be present"
        );
        combined_jsonl.push_str(&trace.to_jsonl());
        println!("--- {aggregator:?} ---\n{}", trace.summary());

        table.row(vec![
            format!("{aggregator:?}"),
            epochs.to_string(),
            total_steps.to_string(),
            crate::report::mib(est_peak),
            crate::report::mib(meas_peak),
            format!("{drift:.4}"),
            "yes".to_string(),
            "bit-identical".to_string(),
        ]);
    }

    // Schema-check and persist the combined JSONL trace next to the table
    // artifact — the same validation CI applies.
    let lines = betty::validate_jsonl(&combined_jsonl)
        .unwrap_or_else(|(line, msg)| panic!("invalid JSONL at line {line}: {msg}"));
    assert!(lines > 0, "trace export must not be empty");
    if std::fs::create_dir_all("experiments_out").is_ok() {
        let _ = std::fs::write("experiments_out/trace.jsonl", &combined_jsonl);
        println!("wrote experiments_out/trace.jsonl ({lines} events)");
    }

    table.finish();
    println!(
        "note: drift ratio is measured/estimated peak — ≤ 1.0 means the \
         analytical model (Eq. 5) over-approximates safely. Mean/Sum at \
         dropout 0 are the modelled configurations; Pool/LSTM carry \
         implementation-dependent constants (see Table 7's error bounds)."
    );
}

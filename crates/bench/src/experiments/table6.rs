//! Table 6: micro-batch (Betty) vs mini-batch training at equal batch
//! counts — first-layer input volume, epoch time, and memory.
//!
//! The paper's mini-batch rows re-sample every batch independently, so
//! shared neighbors across batches are loaded once *per batch*; Betty's
//! micro-batches partition one batch and only duplicate what the cut
//! forces.

use betty::{Runner, StrategyKind};

use crate::presets::products_3layer;
use crate::report::{mib, secs, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let (ds, mut config) = products_3layer(profile);
    config.fanouts = vec![10, 25]; // the table's 2-layer mean configuration
    config.capacity_bytes = usize::MAX;
    let ks: &[usize] = match profile {
        Profile::Quick => &[1, 4, 16],
        Profile::Full => &[1, 2, 4, 8, 16, 32, 64],
    };
    let mut table = Table::new(
        "table6",
        "micro-batch vs mini-batch: first-layer inputs, epoch time, peak memory",
        &[
            "K",
            "micro inputs",
            "mini inputs",
            "micro sec",
            "mini sec",
            "micro MiB",
            "mini MiB",
        ],
    );
    let mut runner = Runner::new(&ds, &config, 0);
    let batch = runner.sample_full_batch(&ds);
    for &k in ks {
        let plan = runner.plan_fixed(&batch, StrategyKind::Betty, k);
        let micro = runner
            .train_micro_batches(&ds, &plan.micro_batches)
            .expect("unbounded device");
        let mini = runner.train_epoch_mini(&ds, k).expect("unbounded device");
        table.row(vec![
            k.to_string(),
            micro.total_input_nodes.to_string(),
            mini.total_input_nodes.to_string(),
            secs(micro.compute_sec),
            secs(mini.compute_sec),
            mib(micro.max_peak_bytes),
            mib(mini.max_peak_bytes),
        ]);
    }
    table.finish();
    println!(
        "note: at K = 64 the paper sees micro-batch input volume ~4.2× the \
         full batch vs ~15.3× for mini-batches; expect the same ordering and \
         a widening gap with K."
    );
}

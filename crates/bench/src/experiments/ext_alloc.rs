//! Extension exhibit: allocator traffic of the zero-realloc hot path.
//!
//! The trainer keeps one autograd tape alive across micro-batches and
//! recycles every value/gradient buffer through the tape's
//! [`betty_tensor::BufferPool`], so a steady-state epoch (same-shaped
//! micro-batches, cached partitioning) rebuilds its forward/backward pass
//! without going back to the heap. This exhibit quantifies that claim and
//! re-checks the correctness contract around it:
//!
//! 1. **Heap-allocation ratio** — identical steady-state epoch loops run
//!    with the pool on and off (`--no-pool`), at 1 and 4 worker threads,
//!    inside the counting global allocator the `ext_alloc` binary
//!    installs. Pool-off must need ≥ 5× more allocation requests. When
//!    the counting allocator is not installed (e.g. this exhibit invoked
//!    from `cargo bench --bench paper`, whose process keeps the system
//!    allocator), the ratio columns report `n/a` and only wall-clock and
//!    pool counters are compared.
//! 2. **Bit-identity** — per-epoch losses and final parameters must match
//!    bit-for-bit across all four runs: pooled buffers are fully
//!    overwritten before use and thread count never changes the math, so
//!    pooling is pure mechanics. This is asserted, not just reported.
//! 3. **Pool hit rate** — after a one-epoch warm-up, the measured epochs
//!    must serve at least [`STEADY_STATE_HIT_RATE`] of buffer requests
//!    from recycled storage. CI's alloc-smoke job re-checks this from the
//!    JSON artifact (`BENCH_alloc.json`, also at the repo root).

use std::time::Instant;

use betty::{ExperimentConfig, Runner, StrategyKind};

use crate::alloc_count;
use crate::presets::bench_dataset;
use crate::report::Table;
use crate::Profile;

/// Minimum fraction of workspace requests the warm pool must serve from
/// recycled buffers during the measured (post-warm-up) epochs.
pub const STEADY_STATE_HIT_RATE: f64 = 0.8;

/// Minimum no-pool/pool heap-allocation ratio on the steady-state loop
/// (only asserted when the counting allocator is installed).
pub const MIN_ALLOC_RATIO: f64 = 5.0;

struct RunResult {
    loss_bits: Vec<u64>,
    param_bits: Vec<u32>,
    heap_allocs: u64,
    steps: usize,
    wall_sec: f64,
    hits: u64,
    misses: u64,
    bytes_recycled: u64,
}

/// One steady-state measurement: sample and partition once (batch
/// preparation is outside the pool's scope), warm up for one epoch so the
/// pool's cold misses are paid, then run `epochs` training epochs over the
/// same micro-batches under the allocation counter — the pure forward/
/// backward/optimizer loop the pooled workspace targets.
fn measure(
    ds: &betty_data::Dataset,
    pool: bool,
    threads: usize,
    epochs: usize,
    k: usize,
) -> RunResult {
    betty_runtime::set_thread_override(Some(threads));
    let config = ExperimentConfig {
        fanouts: vec![5, 10],
        hidden_dim: 32,
        dropout: 0.0,
        pool,
        ..ExperimentConfig::default()
    };
    let mut runner = Runner::new(ds, &config, 0);
    let batch = runner.sample_full_batch(ds);
    let micros = runner.plan_fixed(&batch, StrategyKind::Betty, k).micro_batches;
    runner
        .train_micro_batches(ds, &micros)
        .expect("default capacity fits the bench batch");

    let mut loss_bits = Vec::with_capacity(epochs);
    let mut steps = 0usize;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut bytes_recycled = 0u64;
    let allocs_before = alloc_count::allocations();
    let started = Instant::now();
    for _ in 0..epochs {
        let stats = runner
            .train_micro_batches(ds, &micros)
            .expect("default capacity fits the bench batch");
        loss_bits.push(stats.loss.to_bits());
        steps += stats.num_steps;
        hits += stats.pool_hits;
        misses += stats.pool_misses;
        bytes_recycled += stats.pool_bytes_recycled;
    }
    let wall_sec = started.elapsed().as_secs_f64();
    let heap_allocs = alloc_count::allocations() - allocs_before;
    betty_runtime::set_thread_override(None);

    let param_bits = runner
        .trainer()
        .model()
        .params()
        .iter()
        .flat_map(|p| p.value().data().iter().map(|v| v.to_bits()))
        .collect();
    RunResult {
        loss_bits,
        param_bits,
        heap_allocs,
        steps,
        wall_sec,
        hits,
        misses,
        bytes_recycled,
    }
}

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let ds = bench_dataset("ogbn-arxiv", profile);
    let epochs = profile.epochs(8);
    let k = 4usize;
    let counting = alloc_count::installed();
    if !counting {
        println!(
            "ext_alloc: counting allocator not installed in this process; \
             reporting wall-clock and pool counters only"
        );
    }

    let mut table = Table::new(
        "BENCH_alloc",
        "heap-allocation traffic of the steady-state epoch loop (pool vs --no-pool)",
        &[
            "threads",
            "pool",
            "epochs",
            "steps",
            "heap allocs",
            "allocs/step",
            "wall (s)",
            "hit rate",
            "MiB recycled",
            "alloc ratio",
            "loss+params",
        ],
    );

    for threads in [1usize, 4] {
        let pooled = measure(&ds, true, threads, epochs, k);
        let plain = measure(&ds, false, threads, epochs, k);

        // The determinism contract: pooling and thread count change
        // mechanics only, never a single bit of the math.
        assert_eq!(
            pooled.loss_bits, plain.loss_bits,
            "threads={threads}: pooled losses must be bit-identical to --no-pool"
        );
        assert_eq!(
            pooled.param_bits, plain.param_bits,
            "threads={threads}: pooled parameters must be bit-identical to --no-pool"
        );
        assert_eq!(plain.hits, 0, "a disabled pool must never serve a buffer");

        let total = pooled.hits + pooled.misses;
        let hit_rate = if total == 0 {
            0.0
        } else {
            pooled.hits as f64 / total as f64
        };
        assert!(
            hit_rate >= STEADY_STATE_HIT_RATE,
            "threads={threads}: steady-state hit rate {hit_rate:.3} below {STEADY_STATE_HIT_RATE}"
        );

        let ratio = if counting && pooled.heap_allocs > 0 {
            Some(plain.heap_allocs as f64 / pooled.heap_allocs as f64)
        } else {
            None
        };
        if let Some(r) = ratio {
            assert!(
                r >= MIN_ALLOC_RATIO,
                "threads={threads}: --no-pool made only {r:.2}x more heap allocations \
                 ({} vs {}), expected >= {MIN_ALLOC_RATIO}x",
                plain.heap_allocs,
                pooled.heap_allocs
            );
        }

        for (label, run, ratio_cell) in [
            (
                "on",
                &pooled,
                ratio.map_or("n/a".to_string(), |r| format!("{r:.1}x")),
            ),
            ("off", &plain, "1.0x (baseline)".to_string()),
        ] {
            let run_total = run.hits + run.misses;
            let run_rate = if run_total == 0 {
                0.0
            } else {
                run.hits as f64 / run_total as f64
            };
            table.row(vec![
                threads.to_string(),
                label.to_string(),
                epochs.to_string(),
                run.steps.to_string(),
                if counting {
                    run.heap_allocs.to_string()
                } else {
                    "n/a".to_string()
                },
                if counting && run.steps > 0 {
                    format!("{:.0}", run.heap_allocs as f64 / run.steps as f64)
                } else {
                    "n/a".to_string()
                },
                crate::report::secs(run.wall_sec),
                format!("{run_rate:.3}"),
                crate::report::mib(run.bytes_recycled as usize),
                ratio_cell,
                "bit-identical".to_string(),
            ]);
        }
    }
    table.finish();

    kernel_alloc_table(counting);
}

/// Kernel-level companion table: the segment mean/max reductions used to
/// allocate a fresh count/argmax `Vec<usize>` on every call; the pooled
/// `_reusing` variants amortize that to (at most) one growth allocation.
/// Both variants must produce bit-identical output — asserted here — so
/// the drop is pure allocator traffic.
fn kernel_alloc_table(counting: bool) {
    use betty_tensor::{segment, Tensor};

    let (rows, cols, n_segments, calls) = (256usize, 32usize, 64usize, 512usize);
    let values = Tensor::from_vec(
        (0..rows * cols).map(|i| ((i as f32) * 0.61).sin()).collect(),
        &[rows, cols],
    )
    .expect("kernel alloc bench tensor");
    let ids: Vec<usize> = (0..rows).map(|r| (r * 13 + 5) % n_segments).collect();
    let mut out_fresh = vec![0.0f32; n_segments * cols];
    let mut out_reusing = vec![0.0f32; n_segments * cols];

    let mut table = Table::new(
        "BENCH_alloc_kernels",
        "count/argmax buffer allocations: fresh-Vec kernels vs pooled _reusing variants",
        &["kernel", "calls", "fresh allocs", "reusing allocs", "drop"],
    );

    // segment_mean: counts buffer.
    let before = alloc_count::allocations();
    for _ in 0..calls {
        out_fresh.fill(0.0);
        let _counts = segment::segment_mean_into(&values, &ids, &mut out_fresh);
    }
    let fresh_mean = alloc_count::allocations() - before;
    let mut counts = Vec::new();
    let before = alloc_count::allocations();
    for _ in 0..calls {
        out_reusing.fill(0.0);
        segment::segment_mean_into_reusing(&values, &ids, &mut out_reusing, &mut counts);
    }
    let reusing_mean = alloc_count::allocations() - before;
    assert_eq!(
        out_fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        out_reusing.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "segment_mean _reusing variant must be bit-identical"
    );

    // segment_max: argmax buffer.
    let before = alloc_count::allocations();
    for _ in 0..calls {
        out_fresh.fill(0.0);
        let _argmax = segment::segment_max_into(&values, &ids, &mut out_fresh);
    }
    let fresh_max = alloc_count::allocations() - before;
    let mut argmax = Vec::new();
    let before = alloc_count::allocations();
    for _ in 0..calls {
        out_reusing.fill(0.0);
        segment::segment_max_into_reusing(&values, &ids, &mut out_reusing, &mut argmax);
    }
    let reusing_max = alloc_count::allocations() - before;
    assert_eq!(
        out_fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        out_reusing.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "segment_max _reusing variant must be bit-identical"
    );

    if counting {
        // One warm-up growth allocation is allowed; per-call traffic must
        // be gone entirely.
        assert!(
            fresh_mean >= calls as u64,
            "fresh segment_mean made only {fresh_mean} allocations over {calls} calls"
        );
        assert!(
            reusing_mean <= 2,
            "reusing segment_mean still allocates per call ({reusing_mean} over {calls})"
        );
        assert!(
            fresh_max >= calls as u64,
            "fresh segment_max made only {fresh_max} allocations over {calls} calls"
        );
        assert!(
            reusing_max <= 2,
            "reusing segment_max still allocates per call ({reusing_max} over {calls})"
        );
    }

    for (kernel, fresh, reusing) in [
        ("segment_mean", fresh_mean, reusing_mean),
        ("segment_max", fresh_max, reusing_max),
    ] {
        table.row(vec![
            kernel.to_string(),
            calls.to_string(),
            if counting { fresh.to_string() } else { "n/a".to_string() },
            if counting { reusing.to_string() } else { "n/a".to_string() },
            if counting && reusing > 0 {
                format!("{:.0}x", fresh as f64 / reusing as f64)
            } else if counting {
                "all".to_string()
            } else {
                "n/a".to_string()
            },
        ]);
    }
    table.finish();
}

//! Extension exhibit: simulated multi-GPU scaling (paper §7 future work).
//!
//! Micro-batches from one Betty plan are LPT-scheduled over a device
//! group; gradients ring-all-reduce. Reported: wall time, speed-up versus
//! the serial single-device run, synchronization cost, and the per-device
//! memory requirement (which *falls* with more devices — each holds fewer
//! micro-batches, but the peak is still a single micro-batch, so it is
//! flat; the win is time).

use betty::{DeviceGroup, Runner, StrategyKind};

use crate::presets::products_3layer;
use crate::report::{secs, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let (ds, mut config) = products_3layer(profile);
    config.capacity_bytes = usize::MAX;
    config.aggregator = betty_nn::AggregatorSpec::Lstm; // worth parallelizing
    config.fanouts = vec![10, 15];
    let k = 16;
    let mut table = Table::new(
        "BENCH_multi_gpu",
        &format!("multi-device scaling, K = {k} micro-batches (LSTM SAGE)"),
        &["devices", "wall sec", "speedup", "sync ms", "busiest-dev steps"],
    );
    for devices in [1usize, 2, 4, 8] {
        let mut runner = Runner::new(&ds, &config, 0);
        let epoch = runner
            .train_epoch_multi_device(&ds, StrategyKind::Betty, k, &DeviceGroup::new(devices))
            .expect("unbounded device");
        let busiest = epoch
            .per_device
            .iter()
            .map(|d| d.num_steps)
            .max()
            .unwrap_or(0);
        table.row(vec![
            devices.to_string(),
            secs(epoch.wall_sec()),
            format!("{:.2}x", epoch.speedup_vs_serial()),
            format!("{:.3}", epoch.allreduce_sec * 1e3),
            busiest.to_string(),
        ]);
    }
    table.finish();
}

//! Extension exhibit: the partition-ahead pipelined epoch scheduler.
//!
//! The paper measures Betty's REG construction + min-cut at ~7.47 ms per
//! batch against range partitioning's 0.03 ms (§6.5, future-work §7:
//! "optimize the REG construction and graph partition to reduce the
//! partitioning overhead"). The `plan_ahead` scheduler removes that
//! overhead from the critical path instead of from the algorithm: while
//! epoch `t` trains, spare `betty-runtime` workers sample and REG-partition
//! epoch `t + 1`, handing the finished plan over at the next epoch
//! boundary.
//!
//! This exhibit sweeps the pipeline depth on the power-law
//! (ogbn-products-like) preset and reports wall time per epoch against two
//! anchors: the synchronous Betty run (depth 0 — what the pipeline must
//! beat) and the range-partitioned run (whose planning cost is already
//! negligible — what the pipeline chases). With depth ≥ 1 and at least two
//! worker threads the Betty rows should close to within a few percent of
//! the range baseline; the residual gap is handoff overhead, not planning.
//!
//! Loss bits are hard-asserted identical across every depth: the pipeline
//! moves work in time, never in value.

use std::time::Instant;

use betty::{Runner, StrategyKind};

use crate::presets::products_3layer;
use crate::report::Table;
use crate::Profile;

/// Fixed partition count for every run in the sweep.
const K: usize = 8;

/// Wall seconds, per-epoch loss bits, and hidden planning seconds for
/// `epochs` fixed-K epochs.
fn run_epochs(
    runner: &mut Runner,
    ds: &betty_data::Dataset,
    strategy: StrategyKind,
    epochs: usize,
) -> (f64, Vec<u64>, f64) {
    let mut losses = Vec::with_capacity(epochs);
    let mut hidden = 0.0f64;
    let started = Instant::now();
    for _ in 0..epochs {
        let stats = runner
            .train_epoch_betty(ds, strategy, K)
            .expect("bench capacity fits the staged plan");
        losses.push(stats.loss.to_bits());
        hidden += stats.plan_ahead_overlap_sec;
    }
    (started.elapsed().as_secs_f64(), losses, hidden)
}

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Every row runs on the same pool width. At least 4 workers keeps the
    // pipeline live even on narrow CI hosts — determinism is
    // thread-count-invariant, so only the timings (honestly) reflect
    // whether spare cores exist to hide the planning in.
    let workers = cores.max(4);
    betty_runtime::set_thread_override(Some(workers));
    let (ds, base_config) = products_3layer(profile);
    let epochs = profile.epochs(8);

    let mut table = Table::new(
        "BENCH_plan_ahead",
        "partition-ahead pipeline: wall time vs depth (power-law preset)",
        &[
            "strategy",
            "depth",
            "epochs",
            "pipelined",
            "wall (s)",
            "s/epoch",
            "hidden plan (s)",
            "vs range",
            "loss bits",
        ],
    );

    // Range anchor: planning is ~free, so this is the floor the pipeline
    // chases. Depth is irrelevant for it (kept at 0 to stay synchronous).
    let (range_wall, range_losses, _) = run_epochs(
        &mut Runner::new(&ds, &base_config, 0),
        &ds,
        StrategyKind::Range,
        epochs,
    );
    table.row(vec![
        "range".to_string(),
        "0".to_string(),
        epochs.to_string(),
        "no".to_string(),
        format!("{range_wall:.4}"),
        format!("{:.4}", range_wall / epochs as f64),
        "0.0000".to_string(),
        "1.00x".to_string(),
        format!("{:#018x}", range_losses[epochs - 1]),
    ]);

    let mut betty_losses: Option<Vec<u64>> = None;
    for depth in [0usize, 1, 2, 4] {
        let config = betty::ExperimentConfig {
            plan_ahead: depth,
            ..base_config.clone()
        };
        let mut runner = Runner::new(&ds, &config, 0);
        let (wall, losses, hidden) = run_epochs(&mut runner, &ds, StrategyKind::Betty, epochs);
        let live = runner.plan_ahead_active();
        assert_eq!(live, depth > 0, "pipeline liveness must track depth");
        match &betty_losses {
            None => betty_losses = Some(losses.clone()),
            Some(reference) => assert_eq!(
                reference, &losses,
                "depth {depth} changed the training math"
            ),
        }
        table.row(vec![
            "betty".to_string(),
            depth.to_string(),
            epochs.to_string(),
            if live { "yes" } else { "no" }.to_string(),
            format!("{wall:.4}"),
            format!("{:.4}", wall / epochs as f64),
            format!("{hidden:.4}"),
            format!("{:.2}x", wall / range_wall.max(1e-12)),
            format!("{:#018x}", losses[epochs - 1]),
        ]);
    }
    table.finish();
    betty_runtime::set_thread_override(None);
    println!(
        "note: every betty row carries identical loss bits (hard-asserted) — \
         the pipeline relocates planning in time, never in value. 'hidden \
         plan (s)' is the sampling + partitioning time that ran under the \
         previous epoch's training instead of on the critical path. With \
         depth >= 1 the betty rows chase the range anchor ({workers} pool \
         threads over {cores} physical cores here; without spare cores the \
         overlap is interleaved, not parallel)."
    );
}

//! Figure 12: peak memory falls and epoch time rises as the micro-batch
//! count grows — five dataset/model panels matching the paper's (a)–(e).

use betty::{Runner, StrategyKind};
use betty_nn::AggregatorSpec;

use crate::presets::{bench_dataset, wall_config};
use crate::report::{mib, secs, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    // The paper's five panels: (dataset, layers/fanouts, aggregator).
    let panels: [(&str, Vec<usize>, AggregatorSpec); 5] = [
        ("ogbn-arxiv", vec![10, 25], AggregatorSpec::Mean),
        ("reddit", vec![10, 25, 30, 40], AggregatorSpec::Mean),
        ("pubmed", vec![10, 25], AggregatorSpec::Lstm),
        ("cora", vec![10, 25], AggregatorSpec::Lstm),
        ("ogbn-products", vec![10], AggregatorSpec::Lstm),
    ];
    let ks: &[usize] = match profile {
        Profile::Quick => &[1, 4, 16],
        Profile::Full => &[1, 2, 4, 8, 16, 32],
    };
    let mut table = Table::new(
        "fig12",
        "peak memory vs training time as K grows (Betty partitioning)",
        &["panel", "dataset", "config", "K", "peak MiB", "train sec"],
    );
    for (i, (name, fanouts, agg)) in panels.into_iter().enumerate() {
        let ds = bench_dataset(name, profile);
        let mut config = wall_config(fanouts.clone(), 32, agg, profile);
        config.capacity_bytes = usize::MAX; // measure, never OOM
        let mut runner = Runner::new(&ds, &config, 0);
        let batch = runner.sample_full_batch(&ds);
        let label = format!("{}-layer SAGE {}", fanouts.len(), agg.name());
        for &k in ks {
            let plan = runner.plan_fixed(&batch, StrategyKind::Betty, k);
            let stats = runner
                .train_micro_batches(&ds, &plan.micro_batches)
                .expect("unbounded device");
            table.row(vec![
                format!("({})", (b'a' + i as u8) as char),
                ds.name.clone(),
                label.clone(),
                k.to_string(),
                mib(stats.max_peak_bytes),
                secs(stats.compute_sec),
            ]);
        }
    }
    table.finish();
    println!(
        "note: the paper's sweet spot (memory mostly saved, time barely up) \
         lands at K = 4–8; look for the same knee above."
    );
}

//! Extension exhibit: partitioning overhead (paper §7 future work:
//! "optimize the REG construction and graph partition to reduce the
//! partitioning overhead").
//!
//! Per strategy and K: time to split the output nodes (REG build + cut for
//! Betty), time to extract the micro-batch block stacks, and the training
//! epoch they enable — showing where Betty's preprocessing sits relative
//! to the compute it saves.

use betty::{Runner, StrategyKind};

use crate::presets::products_3layer;
use crate::report::Table;
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let (ds, mut config) = products_3layer(profile);
    config.capacity_bytes = usize::MAX;
    let ks: &[usize] = match profile {
        Profile::Quick => &[8],
        Profile::Full => &[8, 32],
    };
    let mut table = Table::new(
        "BENCH_overhead",
        "partitioning overhead vs training time (ms)",
        &["K", "strategy", "partition", "extraction", "train epoch"],
    );
    let mut runner = Runner::new(&ds, &config, 0);
    let batch = runner.sample_full_batch(&ds);
    for &k in ks {
        for strategy in StrategyKind::ALL {
            let plan = runner.plan_fixed(&batch, strategy, k);
            let stats = runner
                .train_micro_batches(&ds, &plan.micro_batches)
                .expect("unbounded device");
            table.row(vec![
                k.to_string(),
                strategy.name().to_string(),
                format!("{:.2}", plan.partition_sec * 1e3),
                format!("{:.2}", plan.extraction_sec * 1e3),
                format!("{:.2}", stats.compute_sec * 1e3),
            ]);
        }
    }
    table.finish();

    // Amortization: reuse the output grouping across epochs (the library's
    // cached-plan mode) and compare total wall time over an epoch budget.
    let epochs = profile.epochs(12);
    let mut t2 = Table::new(
        "BENCH_overhead_amortized",
        &format!("plan caching over {epochs} epochs (K = 8, Betty)"),
        &["mode", "partitionings paid", "total sec"],
    );
    for (mode, refresh) in [("fresh every epoch", 1usize), ("cached (refresh 10)", 10)] {
        let mut runner = Runner::new(&ds, &config, 0);
        let started = std::time::Instant::now();
        let mut paid = 0usize;
        for _ in 0..epochs {
            let (_, fresh) = runner
                .train_epoch_betty_cached(&ds, StrategyKind::Betty, 8, refresh)
                .expect("unbounded device");
            paid += fresh as usize;
        }
        t2.row(vec![
            mode.to_string(),
            paid.to_string(),
            format!("{:.3}", started.elapsed().as_secs_f64()),
        ]);
    }
    t2.finish();
    println!(
        "note: Betty's REG construction dominates its partition column; the \
         paper lists reducing it as future work. The cached mode amortizes it \
         across epochs (the output set never changes), trading marginal \
         redundancy staleness for near-zero partitioning cost."
    );
}

//! Bench-scale dataset and configuration constructors.
//!
//! The paper's graphs range from 2.7k (Cora) to 2.45M nodes
//! (ogbn-products); the harness shrinks them so every exhibit regenerates
//! in minutes on a laptop while keeping relative sizes (products > reddit >
//! arxiv > pubmed > cora) and degree structure. Feature dimensions are also
//! reduced — memory *composition*, not raw width, is what the experiments
//! probe — except where a figure sweeps the hidden/feature size itself.

use betty::{ExperimentConfig, ModelKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::gib;
use betty_nn::AggregatorSpec;

use crate::Profile;

/// The five datasets at bench scale, Table 4 order.
pub fn bench_datasets(profile: Profile) -> Vec<Dataset> {
    let specs = [
        (DatasetSpec::cora(), 0.6, 64),
        (DatasetSpec::pubmed(), 0.12, 48),
        (DatasetSpec::reddit(), 0.012, 48),
        (DatasetSpec::ogbn_arxiv(), 0.016, 32),
        (DatasetSpec::ogbn_products(), 0.0018, 32),
    ];
    specs
        .into_iter()
        .map(|(spec, scale, feat)| {
            spec.scaled(profile.scale(scale))
                .with_feature_dim(feat)
                .generate(2024)
        })
        .collect()
}

/// One bench-scale dataset by paper name.
///
/// # Panics
///
/// Panics if `name` is not one of the five presets.
pub fn bench_dataset(name: &str, profile: Profile) -> Dataset {
    bench_datasets(profile)
        .into_iter()
        .find(|d| d.name.starts_with(name))
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
}

/// A products-like graph for the Fig. 14–16 / Table 6 family, which the
/// paper runs on ogbn-products with 3-layer fanout (25, 35, 40).
pub fn products_3layer(profile: Profile) -> (Dataset, ExperimentConfig) {
    let ds = DatasetSpec::ogbn_products()
        .scaled(profile.scale(0.0018))
        .with_feature_dim(32)
        .generate(2024);
    let config = ExperimentConfig {
        fanouts: vec![25, 35, 40],
        hidden_dim: 32,
        aggregator: AggregatorSpec::Mean,
        model: ModelKind::GraphSage,
        dropout: 0.0,
        capacity_bytes: gib(24),
        ..ExperimentConfig::default()
    };
    (ds, config)
}

/// The simulated device capacity used by the memory-wall exhibits
/// (Figs. 2 & 10). The paper's RTX 6000 offers 24 GB against ogbn-products
/// (2.45M nodes); our graphs are ~1000× smaller, so the wall is scaled to
/// keep the same *relative* pressure: LSTM/deep/wide configs overflow it,
/// plain Mean at 2 layers does not.
pub fn wall_capacity(profile: Profile) -> usize {
    match profile {
        Profile::Quick => 16 << 20,
        Profile::Full => 64 << 20,
    }
}

/// Shorthand for a SAGE config with the wall capacity.
pub fn wall_config(
    fanouts: Vec<usize>,
    hidden: usize,
    aggregator: AggregatorSpec,
    profile: Profile,
) -> ExperimentConfig {
    ExperimentConfig {
        fanouts,
        hidden_dim: hidden,
        aggregator,
        model: ModelKind::GraphSage,
        dropout: 0.0,
        capacity_bytes: wall_capacity(profile),
        max_partitions: 4096,
        ..ExperimentConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_bench_datasets_in_size_order_extremes() {
        let ds = bench_datasets(Profile::Quick);
        assert_eq!(ds.len(), 5);
        // products (last) is the largest, cora (first) the smallest.
        let sizes: Vec<usize> = ds.iter().map(|d| d.num_nodes()).collect();
        assert!(sizes[4] > sizes[0], "{sizes:?}");
    }

    #[test]
    fn lookup_by_name() {
        let d = bench_dataset("cora", Profile::Quick);
        assert!(d.name.starts_with("cora"));
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_name_panics() {
        bench_dataset("citeseer", Profile::Quick);
    }
}

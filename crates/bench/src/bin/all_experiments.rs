//! Regenerates every paper exhibit in order.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::run_all(profile);
}

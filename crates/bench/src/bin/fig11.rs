//! Regenerates the paper's fig11 exhibit. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::fig11::run(profile);
}

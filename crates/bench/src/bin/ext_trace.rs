//! Extension exhibit: ext_trace. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::ext_trace::run(profile);
}

//! Regenerates the paper's fig13 exhibit. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::fig13::run(profile);
}

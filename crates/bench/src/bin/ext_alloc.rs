//! Extension exhibit: ext_alloc. `BETTY_PROFILE=quick` shrinks it.
//!
//! This binary installs the counting global allocator so the exhibit can
//! compare heap-allocation traffic with the tensor pool on vs off; every
//! other entry point runs the same exhibit without allocation counts.

#[global_allocator]
static GLOBAL: betty_bench::alloc_count::CountingAllocator =
    betty_bench::alloc_count::CountingAllocator;

fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::ext_alloc::run(profile);
}

//! Regenerates the paper's fig02 exhibit. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::fig02::run(profile);
}

//! Regenerates the paper's fig12 exhibit. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::fig12::run(profile);
}

//! Regenerates the paper's ablation exhibit. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::ablation::run(profile);
}

//! Extension exhibit: ext_storage_chaos. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::ext_storage_chaos::run(profile);
}

//! Extension exhibit: ext_multi_gpu. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::ext_multi_gpu::run(profile);
}

//! Regenerates the paper's fig09 exhibit. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::fig09::run(profile);
}

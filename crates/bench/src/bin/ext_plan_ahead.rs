//! Extension exhibit: ext_plan_ahead. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::ext_plan_ahead::run(profile);
}

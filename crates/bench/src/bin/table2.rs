//! Regenerates the paper's table2 exhibit. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::table2::run(profile);
}

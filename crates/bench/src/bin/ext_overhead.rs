//! Extension exhibit: ext_overhead. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::ext_overhead::run(profile);
}

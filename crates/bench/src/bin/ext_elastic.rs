//! Extension exhibit: ext_elastic. `BETTY_PROFILE=quick` shrinks it.
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::ext_elastic::run(profile);
}

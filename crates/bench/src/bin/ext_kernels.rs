//! Extension exhibit: ext_kernels. `BETTY_PROFILE=quick` shrinks it.

fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::ext_kernels::run(profile);
}

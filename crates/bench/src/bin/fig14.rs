//! Regenerates Figures 14, 15 and 16 (one shared sweep).
fn main() {
    let profile = betty_bench::Profile::from_env();
    betty_bench::experiments::fig14_15_16::run(profile);
}

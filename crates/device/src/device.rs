use std::collections::HashMap;
use std::fmt;

use betty_trace::{MemEvent, MemTimeline};

use crate::fault::{AllocFaultInjector, FaultEvent};

/// What a device allocation holds — the categories of the paper's memory
/// breakdown (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryCategory {
    /// GNN model weights (excluding the aggregator's own parameters).
    Parameters,
    /// Raw input-node feature rows staged for aggregation.
    InputFeatures,
    /// Output-node labels.
    Labels,
    /// Bipartite block structure (edge endpoints and weights).
    Blocks,
    /// Hidden-layer outputs and other forward activations.
    HiddenActivations,
    /// Aggregator-internal intermediate tensors (large for LSTM).
    AggregatorIntermediate,
    /// Parameter gradients.
    Gradients,
    /// Optimizer state (Adam: first and second moments).
    OptimizerStates,
    /// Double-buffered prefetch: the *next* micro-batch's transfer data
    /// (blocks, input features, labels) staged while the current one
    /// computes. Held across the step boundary, then re-charged as the
    /// static categories of the step that consumes it.
    PrefetchStaging,
    /// Partition-ahead staging: transfer data of a *future epoch's*
    /// micro-batches whose plan was computed by the pipelined scheduler
    /// while the current epoch trained. Charged at the epoch boundary
    /// (and released before the first step runs), so Eq. 5 feasibility
    /// accounting sees in-flight plans without perturbing step peaks.
    PlanAhead,
    /// Pinned hot-set cache of an out-of-core feature store: the byte
    /// budget the paged backend may keep resident, charged as a constant
    /// reservation every step (`min(cache budget, total feature bytes)`)
    /// so the planner's estimate and the ledger agree exactly.
    FeatureCache,
}

impl MemoryCategory {
    /// All categories, in breakdown-report order.
    pub const ALL: [MemoryCategory; 11] = [
        MemoryCategory::Parameters,
        MemoryCategory::InputFeatures,
        MemoryCategory::Labels,
        MemoryCategory::Blocks,
        MemoryCategory::HiddenActivations,
        MemoryCategory::AggregatorIntermediate,
        MemoryCategory::Gradients,
        MemoryCategory::OptimizerStates,
        MemoryCategory::PrefetchStaging,
        MemoryCategory::PlanAhead,
        MemoryCategory::FeatureCache,
    ];

    /// Stable lowercase name, also used as the `category` field of
    /// timeline events ([`betty_trace::MemEvent`]).
    pub const fn name(&self) -> &'static str {
        match self {
            MemoryCategory::Parameters => "parameters",
            MemoryCategory::InputFeatures => "input features",
            MemoryCategory::Labels => "labels",
            MemoryCategory::Blocks => "blocks",
            MemoryCategory::HiddenActivations => "hidden activations",
            MemoryCategory::AggregatorIntermediate => "aggregator intermediate",
            MemoryCategory::Gradients => "gradients",
            MemoryCategory::OptimizerStates => "optimizer states",
            MemoryCategory::PrefetchStaging => "prefetch staging",
            MemoryCategory::PlanAhead => "plan ahead",
            MemoryCategory::FeatureCache => "feature cache",
        }
    }
}

impl fmt::Display for MemoryCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Handle to a live allocation on a [`Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocationId(u64);

/// Returned when an allocation would exceed device capacity — the simulated
/// equivalent of CUDA's out-of-memory error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Bytes the failed allocation requested.
    pub requested: usize,
    /// Bytes in use at the time of the failure.
    pub in_use: usize,
    /// Device capacity.
    pub capacity: usize,
    /// Whether an armed [`FaultPlan`](crate::FaultPlan) injected this
    /// failure rather than the ledger genuinely running out of room.
    pub injected: bool,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes with {} of {} in use{}",
            self.requested,
            self.in_use,
            self.capacity,
            if self.injected { " (injected fault)" } else { "" }
        )
    }
}

impl std::error::Error for OomError {}

/// A capacity-limited allocation ledger simulating accelerator memory.
///
/// Tracks current and peak usage globally and per [`MemoryCategory`], so
/// experiments can report both OOM behaviour (Figs. 2 & 10) and the memory
/// breakdown (Fig. 3) of a training step.
#[derive(Debug, Clone)]
pub struct Device {
    capacity: usize,
    current: usize,
    peak: usize,
    next_id: u64,
    live: HashMap<u64, (usize, MemoryCategory)>,
    current_by_cat: HashMap<MemoryCategory, usize>,
    peak_by_cat: HashMap<MemoryCategory, usize>,
    peak_snapshot: HashMap<MemoryCategory, usize>,
    faults: Option<AllocFaultInjector>,
    timeline: Option<MemTimeline>,
}

impl Device {
    /// A device with the given capacity in bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            current: 0,
            peak: 0,
            next_id: 0,
            live: HashMap::new(),
            current_by_cat: HashMap::new(),
            peak_by_cat: HashMap::new(),
            peak_snapshot: HashMap::new(),
            faults: None,
            timeline: None,
        }
    }

    /// A device that never OOMs (used to *measure* how much memory a
    /// configuration would need).
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] if the allocation would exceed capacity; the
    /// ledger is unchanged in that case.
    pub fn alloc(&mut self, bytes: usize, category: MemoryCategory) -> Result<AllocationId, OomError> {
        if let Some(faults) = self.faults.as_mut() {
            if faults.check_alloc(bytes, self.current, self.capacity).is_some() {
                return Err(OomError {
                    requested: bytes,
                    in_use: self.current,
                    capacity: self.capacity,
                    injected: true,
                });
            }
        }
        self.alloc_unfaulted(bytes, category)
    }

    /// Like [`Device::alloc`], but bypassing any armed fault injector:
    /// only the genuine capacity check applies and the injector's seeded
    /// decision stream is not consumed. Used for bookkeeping charges that
    /// must not perturb fault schedules aligned with an uninstrumented
    /// run (e.g. the partition-ahead pipeline's staging charge, which
    /// must keep `--fault-alloc-rate` draws bit-identical to a run at
    /// `--plan-ahead 0`).
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] if the allocation would exceed capacity; the
    /// ledger is unchanged in that case.
    pub fn alloc_unfaulted(
        &mut self,
        bytes: usize,
        category: MemoryCategory,
    ) -> Result<AllocationId, OomError> {
        if self.current.saturating_add(bytes) > self.capacity {
            return Err(OomError {
                requested: bytes,
                in_use: self.current,
                capacity: self.capacity,
                injected: false,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, (bytes, category));
        self.current += bytes;
        let cat = self.current_by_cat.entry(category).or_insert(0);
        *cat += bytes;
        let cat_now = *cat;
        let peak_cat = self.peak_by_cat.entry(category).or_insert(0);
        *peak_cat = (*peak_cat).max(cat_now);
        // Category counters must be up to date before the global-peak
        // check: the snapshot taken here is the breakdown *at the peak
        // instant*, so its parts sum exactly to `peak`.
        if self.current > self.peak {
            self.peak = self.current;
            self.peak_snapshot = self.current_by_cat.clone();
        }
        if let Some(tl) = self.timeline.as_mut() {
            tl.record(self.current, bytes as i64, category.name());
        }
        Ok(AllocationId(id))
    }

    /// Releases an allocation; double-frees are ignored (freeing is
    /// idempotent, matching C-DTOR-FAIL guidance that teardown never fails).
    pub fn free(&mut self, id: AllocationId) {
        if let Some((bytes, category)) = self.live.remove(&id.0) {
            self.current -= bytes;
            if let Some(c) = self.current_by_cat.get_mut(&category) {
                *c -= bytes;
            }
            if let Some(tl) = self.timeline.as_mut() {
                tl.record(self.current, -(bytes as i64), category.name());
            }
        }
    }

    /// Frees every live allocation (end of a micro-batch step).
    pub fn free_all(&mut self) {
        // One aggregate timeline event for the bulk release: iterating
        // `live` would emit events in HashMap order, which is
        // nondeterministic.
        if self.current > 0 {
            let released = self.current as i64;
            if let Some(tl) = self.timeline.as_mut() {
                tl.record(0, -released, "free_all");
            }
        }
        self.current = 0;
        self.live.clear();
        self.current_by_cat.clear();
    }

    /// Bytes currently allocated.
    pub fn current_bytes(&self) -> usize {
        self.current
    }

    /// High-water mark since construction or the last
    /// [`Device::reset_peak`].
    pub fn peak_bytes(&self) -> usize {
        self.peak
    }

    /// Resets peak tracking (global, per-category, and the at-peak
    /// snapshot) to current usage.
    pub fn reset_peak(&mut self) {
        self.peak = self.current;
        self.peak_by_cat = self.current_by_cat.clone();
        self.peak_snapshot = self.current_by_cat.clone();
    }

    /// Bytes per category *at the instant the global peak was reached*,
    /// in [`MemoryCategory::ALL`] order. Unlike
    /// [`Device::independent_peaks`], the entries sum exactly to
    /// [`Device::peak_bytes`], so the breakdown is a faithful Fig. 3-style
    /// decomposition of the worst moment.
    pub fn peak_breakdown(&self) -> Vec<(MemoryCategory, usize)> {
        MemoryCategory::ALL
            .iter()
            .map(|&c| (c, self.peak_snapshot.get(&c).copied().unwrap_or(0)))
            .collect()
    }

    /// Each category's own high-water mark since the last reset, in
    /// [`MemoryCategory::ALL`] order. The per-category maxima are reached
    /// at *different* instants, so these can sum to more than the global
    /// peak — use [`Device::peak_breakdown`] for a decomposition of the
    /// peak itself.
    pub fn independent_peaks(&self) -> Vec<(MemoryCategory, usize)> {
        MemoryCategory::ALL
            .iter()
            .map(|&c| (c, self.peak_by_cat.get(&c).copied().unwrap_or(0)))
            .collect()
    }

    /// Current bytes in one category.
    pub fn current_in(&self, category: MemoryCategory) -> usize {
        self.current_by_cat.get(&category).copied().unwrap_or(0)
    }

    /// Arms fault injection: subsequent allocations consult `injector`
    /// and may fail with [`OomError::injected`] set. Replaces any
    /// previously armed injector.
    pub fn arm_faults(&mut self, injector: AllocFaultInjector) {
        self.faults = Some(injector);
    }

    /// Disarms fault injection, returning the injector (with any
    /// undrained events) if one was armed.
    pub fn disarm_faults(&mut self) -> Option<AllocFaultInjector> {
        self.faults.take()
    }

    /// Whether a fault injector is armed.
    pub fn faults_armed(&self) -> bool {
        self.faults.is_some()
    }

    /// Marks a step boundary for fault injection: re-arms scheduled
    /// step faults and redraws capacity jitter. No-op when no injector
    /// is armed.
    pub fn begin_step(&mut self, step: usize) {
        let capacity = self.capacity;
        if let Some(faults) = self.faults.as_mut() {
            faults.begin_step(step, capacity);
        }
    }

    /// Removes and returns the fault events recorded since the last
    /// drain. Empty when no injector is armed.
    pub fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        self.faults
            .as_mut()
            .map(AllocFaultInjector::drain_events)
            .unwrap_or_default()
    }

    /// Starts recording a memory timeline: every subsequent
    /// `alloc`/`free`/`free_all` appends a [`MemEvent`]. Replaces any
    /// timeline already being recorded. When no timeline is enabled (the
    /// default) the ledger does no tracing work at all.
    pub fn enable_timeline(&mut self) {
        self.timeline = Some(MemTimeline::new());
    }

    /// Stops timeline recording, returning the timeline (with any
    /// undrained events) if one was enabled.
    pub fn disable_timeline(&mut self) -> Option<MemTimeline> {
        self.timeline.take()
    }

    /// Whether a memory timeline is being recorded.
    pub fn timeline_enabled(&self) -> bool {
        self.timeline.is_some()
    }

    /// Removes and returns the timeline events recorded since the last
    /// drain. Empty when no timeline is enabled; sequence numbers keep
    /// growing across drains.
    pub fn drain_timeline_events(&mut self) -> Vec<MemEvent> {
        self.timeline
            .as_mut()
            .map(MemTimeline::drain)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut d = Device::new(1000);
        let a = d.alloc(400, MemoryCategory::Parameters).unwrap();
        let b = d.alloc(500, MemoryCategory::InputFeatures).unwrap();
        assert_eq!(d.current_bytes(), 900);
        assert_eq!(d.peak_bytes(), 900);
        d.free(a);
        assert_eq!(d.current_bytes(), 500);
        assert_eq!(d.peak_bytes(), 900, "peak survives frees");
        d.free(b);
        assert_eq!(d.current_bytes(), 0);
    }

    #[test]
    fn oom_leaves_ledger_unchanged() {
        let mut d = Device::new(100);
        d.alloc(80, MemoryCategory::Blocks).unwrap();
        let err = d.alloc(30, MemoryCategory::Blocks).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.capacity, 100);
        assert_eq!(d.current_bytes(), 80);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn double_free_is_ignored() {
        let mut d = Device::new(100);
        let a = d.alloc(50, MemoryCategory::Labels).unwrap();
        d.free(a);
        d.free(a);
        assert_eq!(d.current_bytes(), 0);
    }

    #[test]
    fn per_category_peaks() {
        let mut d = Device::unbounded();
        let a = d
            .alloc(100, MemoryCategory::AggregatorIntermediate)
            .unwrap();
        d.free(a);
        d.alloc(60, MemoryCategory::Gradients).unwrap();
        // Global peak is 100 (the categories never coexisted), and the
        // breakdown shows what was live at that instant: only the
        // aggregator allocation.
        assert_eq!(d.peak_bytes(), 100);
        let bd: std::collections::HashMap<_, _> = d.peak_breakdown().into_iter().collect();
        assert_eq!(bd[&MemoryCategory::AggregatorIntermediate], 100);
        assert_eq!(bd[&MemoryCategory::Gradients], 0);
        assert_eq!(bd[&MemoryCategory::Labels], 0);
        // The independent per-category maxima keep the old semantics and
        // may sum to more than the global peak.
        let ind: std::collections::HashMap<_, _> = d.independent_peaks().into_iter().collect();
        assert_eq!(ind[&MemoryCategory::AggregatorIntermediate], 100);
        assert_eq!(ind[&MemoryCategory::Gradients], 60);
    }

    #[test]
    fn peak_breakdown_sums_to_global_peak() {
        let mut d = Device::unbounded();
        let p = d.alloc(30, MemoryCategory::Parameters).unwrap();
        d.alloc(50, MemoryCategory::Blocks).unwrap();
        let g = d.alloc(20, MemoryCategory::Gradients).unwrap();
        d.free(g);
        d.free(p);
        // Peak (100) happened with all three live.
        assert_eq!(d.peak_bytes(), 100);
        let bd = d.peak_breakdown();
        let sum: usize = bd.iter().map(|(_, b)| b).sum();
        assert_eq!(sum, d.peak_bytes(), "snapshot decomposes the peak exactly");
        let bd: std::collections::HashMap<_, _> = bd.into_iter().collect();
        assert_eq!(bd[&MemoryCategory::Parameters], 30);
        assert_eq!(bd[&MemoryCategory::Blocks], 50);
        assert_eq!(bd[&MemoryCategory::Gradients], 20);
        // reset_peak re-bases the snapshot on current usage (blocks only).
        d.reset_peak();
        assert_eq!(d.peak_bytes(), 50);
        let bd: std::collections::HashMap<_, _> = d.peak_breakdown().into_iter().collect();
        assert_eq!(bd[&MemoryCategory::Blocks], 50);
        assert_eq!(bd[&MemoryCategory::Parameters], 0);
    }

    #[test]
    fn timeline_records_allocs_frees_and_bulk_release() {
        let mut d = Device::new(1000);
        assert!(!d.timeline_enabled());
        d.alloc(10, MemoryCategory::Parameters).unwrap(); // before enabling: untraced
        d.enable_timeline();
        assert!(d.timeline_enabled());
        let a = d.alloc(100, MemoryCategory::Blocks).unwrap();
        d.free(a);
        d.alloc(40, MemoryCategory::Labels).unwrap();
        d.free_all();
        let events = d.drain_timeline_events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].delta_bytes, 100);
        assert_eq!(events[0].total_bytes, 110);
        assert_eq!(events[0].category, "blocks");
        assert_eq!(events[1].delta_bytes, -100);
        assert_eq!(events[2].category, "labels");
        assert_eq!(events[3].category, "free_all");
        assert_eq!(events[3].delta_bytes, -50, "one aggregate event for the bulk release");
        assert_eq!(events[3].total_bytes, 0);
        // Sequence numbers are monotonic and survive draining.
        assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert!(d.drain_timeline_events().is_empty());
        d.alloc(5, MemoryCategory::Labels).unwrap();
        assert_eq!(d.drain_timeline_events()[0].seq, events[3].seq + 1);
        let tl = d.disable_timeline();
        assert!(tl.is_some());
        assert!(!d.timeline_enabled());
        // Disabled again: allocations no longer record.
        d.alloc(5, MemoryCategory::Labels).unwrap();
        assert!(d.drain_timeline_events().is_empty());
    }

    #[test]
    fn reset_peak_tracks_from_current() {
        let mut d = Device::unbounded();
        let a = d.alloc(100, MemoryCategory::Parameters).unwrap();
        d.free(a);
        d.reset_peak();
        assert_eq!(d.peak_bytes(), 0);
        d.alloc(10, MemoryCategory::Parameters).unwrap();
        assert_eq!(d.peak_bytes(), 10);
    }

    #[test]
    fn free_all_clears_everything() {
        let mut d = Device::new(100);
        d.alloc(40, MemoryCategory::Blocks).unwrap();
        d.alloc(40, MemoryCategory::Labels).unwrap();
        d.free_all();
        assert_eq!(d.current_bytes(), 0);
        assert_eq!(d.current_in(MemoryCategory::Blocks), 0);
        // Capacity is available again.
        assert!(d.alloc(100, MemoryCategory::Blocks).is_ok());
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut d = Device::new(64);
        assert!(d.alloc(64, MemoryCategory::Parameters).is_ok());
        assert!(d.alloc(1, MemoryCategory::Parameters).is_err());
    }

    #[test]
    fn genuine_oom_is_not_marked_injected() {
        let mut d = Device::new(100);
        let err = d.alloc(200, MemoryCategory::Blocks).unwrap_err();
        assert!(!err.injected);
        assert!(!err.to_string().contains("injected"));
    }

    #[test]
    fn armed_step_fault_injects_and_ledger_is_untouched() {
        use crate::fault::FaultPlan;
        let mut d = Device::new(1000);
        let plan = FaultPlan {
            oom_steps: vec![0],
            ..FaultPlan::default()
        };
        d.arm_faults(plan.alloc_injector());
        assert!(d.faults_armed());
        d.begin_step(0);
        let err = d.alloc(10, MemoryCategory::Blocks).unwrap_err();
        assert!(err.injected);
        assert!(err.to_string().contains("injected"));
        assert_eq!(d.current_bytes(), 0, "injected failure allocates nothing");
        // Second allocation of the step proceeds normally.
        assert!(d.alloc(10, MemoryCategory::Blocks).is_ok());
        let events = d.drain_fault_events();
        assert_eq!(events.len(), 1);
        assert!(d.drain_fault_events().is_empty());
        let injector = d.disarm_faults();
        assert!(injector.is_some());
        assert!(!d.faults_armed());
    }

    #[test]
    fn unfaulted_alloc_bypasses_injection_but_not_capacity() {
        use crate::fault::FaultPlan;
        let mut d = Device::new(100);
        let plan = FaultPlan {
            oom_steps: vec![0],
            ..FaultPlan::default()
        };
        d.arm_faults(plan.alloc_injector());
        d.begin_step(0);
        // The armed step fault does not fire: the charge lands and the
        // injector still holds its shot for the next faultable alloc.
        let id = d.alloc_unfaulted(60, MemoryCategory::PlanAhead).unwrap();
        assert_eq!(d.current_in(MemoryCategory::PlanAhead), 60);
        assert!(d.alloc(10, MemoryCategory::Blocks).unwrap_err().injected);
        d.free(id);
        // The genuine capacity check still applies.
        let err = d.alloc_unfaulted(200, MemoryCategory::PlanAhead).unwrap_err();
        assert!(!err.injected);
        let events = d.drain_fault_events();
        assert_eq!(events.len(), 1, "only the faultable alloc recorded an event");
    }

    #[test]
    fn disarmed_device_never_injects() {
        let mut d = Device::new(1000);
        d.begin_step(0); // no-op without an injector
        assert!(d.alloc(10, MemoryCategory::Blocks).is_ok());
        assert!(d.drain_fault_events().is_empty());
    }
}

use crate::fault::{FaultEvent, TransferFaultInjector};

/// Host→device transfer cost model.
///
/// Approximates a PCIe link as fixed per-transfer latency plus
/// bytes/bandwidth — enough to reproduce the *shape* of the paper's data-
/// movement results (Fig. 14): many small micro-batch uploads amortize the
/// link worse than one large full-batch upload.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferModel {
    bandwidth_bytes_per_sec: f64,
    latency_sec: f64,
    total_bytes: u64,
    total_time_sec: f64,
    num_transfers: u64,
    total_stall_sec: f64,
    faults: Option<TransferFaultInjector>,
}

impl TransferModel {
    /// A model with the given sustained bandwidth (bytes/s) and fixed
    /// per-transfer latency (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_sec` is not positive or `latency_sec`
    /// is negative.
    pub fn new(bandwidth_bytes_per_sec: f64, latency_sec: f64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        assert!(latency_sec >= 0.0, "latency must be non-negative");
        Self {
            bandwidth_bytes_per_sec,
            latency_sec,
            total_bytes: 0,
            total_time_sec: 0.0,
            num_transfers: 0,
            total_stall_sec: 0.0,
            faults: None,
        }
    }

    /// PCIe 3.0 x16-like defaults: ~12 GB/s effective, 10 µs per transfer.
    pub fn pcie3() -> Self {
        Self::new(12.0e9, 10.0e-6)
    }

    /// NVMe-SSD-like defaults for feature page-ins: ~3 GB/s sustained,
    /// 100 µs per request.
    pub fn nvme() -> Self {
        Self::new(3.0e9, 100.0e-6)
    }

    /// Time a single transfer of `bytes` would take, without recording it.
    ///
    /// A zero-byte transfer is free: no data crosses the link, so no
    /// latency is charged. (Empty micro-batch prefetches and zero-byte
    /// feature page-ins used to pay full link latency here, inflating
    /// `prefetch_overlap_sec` with time no hardware would spend.)
    pub fn time_for(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// Records a transfer and returns its simulated duration in seconds,
    /// including any injected stall.
    ///
    /// Zero-byte transfers are free and unrecorded: they neither bump the
    /// counters nor consult the fault injector (so skipping an empty
    /// transfer cannot shift the injected-stall RNG stream).
    pub fn transfer(&mut self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let mut t = self.time_for(bytes);
        if let Some(stall) = self.faults.as_mut().and_then(TransferFaultInjector::check_transfer) {
            t += stall;
            self.total_stall_sec += stall;
        }
        self.total_bytes += bytes as u64;
        self.total_time_sec += t;
        self.num_transfers += 1;
        t
    }

    /// Total bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total simulated transfer time so far, in seconds.
    pub fn total_time_sec(&self) -> f64 {
        self.total_time_sec
    }

    /// Number of recorded transfers.
    pub fn num_transfers(&self) -> u64 {
        self.num_transfers
    }

    /// Simulated seconds spent in injected stalls so far.
    pub fn total_stall_sec(&self) -> f64 {
        self.total_stall_sec
    }

    /// Clears accumulated counters (per-epoch reporting). Armed fault
    /// injectors keep their state: counters are reporting-side only.
    pub fn reset(&mut self) {
        self.total_bytes = 0;
        self.total_time_sec = 0.0;
        self.num_transfers = 0;
        self.total_stall_sec = 0.0;
    }

    /// Arms stall injection: subsequent transfers consult `injector`.
    /// Replaces any previously armed injector.
    pub fn arm_faults(&mut self, injector: TransferFaultInjector) {
        self.faults = Some(injector);
    }

    /// Disarms stall injection, returning the injector (with any
    /// undrained events) if one was armed.
    pub fn disarm_faults(&mut self) -> Option<TransferFaultInjector> {
        self.faults.take()
    }

    /// Removes and returns stall events recorded since the last drain.
    /// Empty when no injector is armed.
    pub fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        self.faults
            .as_mut()
            .map(TransferFaultInjector::drain_events)
            .unwrap_or_default()
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        Self::pcie3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_latency_plus_bandwidth_term() {
        let m = TransferModel::new(1e9, 1e-3);
        let t = m.time_for(2_000_000_000);
        assert!((t - 2.001).abs() < 1e-9);
    }

    #[test]
    fn accumulates() {
        let mut m = TransferModel::new(1e6, 0.0);
        m.transfer(500_000);
        m.transfer(500_000);
        assert_eq!(m.total_bytes(), 1_000_000);
        assert_eq!(m.num_transfers(), 2);
        assert!((m.total_time_sec() - 1.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn zero_byte_transfers_are_free_and_unrecorded() {
        let mut m = TransferModel::new(1e6, 0.25);
        assert_eq!(m.time_for(0), 0.0, "no bytes, no latency");
        assert!(m.time_for(1) >= 0.25, "non-empty transfers still pay latency");
        assert_eq!(m.transfer(0), 0.0);
        assert_eq!(m.num_transfers(), 0, "empty transfer must not be counted");
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.total_time_sec(), 0.0);
        // An armed injector must not be consulted either — otherwise an
        // empty prefetch would consume a stall draw and shift every
        // later stall onto a different transfer.
        use crate::fault::FaultPlan;
        let plan = FaultPlan {
            seed: 9,
            transfer_stall_rate: 1.0,
            transfer_stall_sec: 0.5,
            ..FaultPlan::default()
        };
        m.arm_faults(plan.transfer_injector());
        assert_eq!(m.transfer(0), 0.0);
        assert_eq!(m.total_stall_sec(), 0.0);
        assert!(m.drain_fault_events().is_empty());
        assert!(m.transfer(1_000) >= 0.5, "the stall lands on the first real transfer");
    }

    #[test]
    fn many_small_transfers_cost_more_than_one_big() {
        let mut small = TransferModel::pcie3();
        for _ in 0..1000 {
            small.transfer(1_000);
        }
        let mut big = TransferModel::pcie3();
        big.transfer(1_000_000);
        assert!(small.total_time_sec() > big.total_time_sec());
        assert_eq!(small.total_bytes(), big.total_bytes());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        TransferModel::new(0.0, 0.0);
    }

    #[test]
    fn injected_stalls_add_time_and_are_reported() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan {
            seed: 5,
            transfer_stall_rate: 1.0,
            transfer_stall_sec: 0.5,
            ..FaultPlan::default()
        };
        let mut m = TransferModel::new(1e9, 0.0);
        m.arm_faults(plan.transfer_injector());
        let t = m.transfer(1_000);
        assert!(t >= 0.5, "stall must lengthen the transfer, got {t}");
        assert!((m.total_stall_sec() - 0.5).abs() < 1e-12);
        assert_eq!(m.drain_fault_events().len(), 1);
        m.reset();
        assert_eq!(m.total_stall_sec(), 0.0);
        assert!(m.disarm_faults().is_some());
        let clean = m.transfer(1_000);
        assert!(clean < 0.5, "disarmed transfers are stall-free");
    }
}

//! Deterministic fault injection for the simulated accelerator.
//!
//! Real GNN training jobs die to transient allocator failures, memory
//! fragmentation, and link hiccups that a clean simulation never
//! produces. [`FaultPlan`] describes a reproducible schedule of such
//! faults; armed onto a [`Device`](crate::Device) /
//! [`TransferModel`](crate::TransferModel) pair it injects:
//!
//! * **spurious allocation failures** — an allocation fails even though
//!   capacity is available, at a configured probability per allocation;
//! * **step-scheduled OOMs** — the first allocation of listed step
//!   indices fails deterministically (for targeted regression tests);
//! * **capacity jitter** — a per-step random slice of capacity is
//!   withheld, so allocations near the limit fail early (fragmentation
//!   stand-in);
//! * **transfer stalls** — a transfer takes a configured extra delay at
//!   a configured probability (link contention stand-in).
//!
//! All draws come from a [`Pcg64Mcg`] seeded from [`FaultPlan::seed`],
//! so the same plan over the same workload injects the same faults in
//! the same order on every run. Every injected fault is recorded as a
//! [`FaultEvent`] that the training layer drains into its recovery log.

use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64Mcg;

use std::collections::BTreeSet;

/// Seed-domain separators so the alloc, transfer, and link streams are
/// independent even though they come from one user-facing seed.
const ALLOC_STREAM_SALT: u64 = 0xA110_C8ED_FA17_0001;
const TRANSFER_STREAM_SALT: u64 = 0x7247_5FE2_FA17_0002;
const LINK_STREAM_SALT: u64 = 0x1141_C057_FA17_0003;
const STORAGE_STREAM_SALT: u64 = 0x5704_A6E1_FA17_0004;

/// A declarative, seedable schedule of injected faults.
///
/// The plan itself is inert configuration (cheap to clone, compare, and
/// log); [`FaultPlan::alloc_injector`] and
/// [`FaultPlan::transfer_injector`] instantiate the stateful runtime
/// injectors that devices arm.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault draws. Two runs with equal plans (including
    /// this seed) and equal workloads observe identical fault sequences.
    pub seed: u64,
    /// Probability in `[0, 1]` that any single allocation spuriously
    /// fails despite available capacity.
    pub alloc_failure_rate: f64,
    /// Step indices whose first allocation deterministically fails
    /// (independent of `alloc_failure_rate`).
    pub oom_steps: Vec<usize>,
    /// Fraction of device capacity in `[0, 1]` that may be withheld
    /// each step: the withheld amount is drawn uniformly from
    /// `[0, capacity_jitter * capacity]` at every step boundary.
    pub capacity_jitter: f64,
    /// Probability in `[0, 1]` that a transfer stalls.
    pub transfer_stall_rate: f64,
    /// Extra seconds a stalled transfer takes.
    pub transfer_stall_sec: f64,
    /// Step indices whose loss is poisoned to NaN before backward
    /// (exercises the trainer's numeric-anomaly sentinel). The poisoning
    /// happens in the trainer, not the device, but lives here so one
    /// `FaultPlan` describes the whole fault schedule.
    pub nan_loss_steps: Vec<usize>,
    /// Device-level failures for elastic multi-device training:
    /// `(device, step)` means device `device` fails after completing
    /// `step` micro-batches from its own queue within an epoch (`0` =
    /// it dies before running anything). Scheduling-layer only — the
    /// interpretation lives in the elastic device group; per-epoch and
    /// deterministic, so chaos runs are replayable.
    pub device_fail_steps: Vec<(usize, usize)>,
    /// Per-device straggler slowdowns: `(device, factor)` multiplies
    /// that device's attributed compute and transfer seconds by
    /// `factor` (must be ≥ 1). Timing-layer only — numerics are
    /// untouched.
    pub straggler_factors: Vec<(usize, f64)>,
    /// Probability in `[0, 1]` that one all-reduce attempt stalls on
    /// the interconnect.
    pub link_stall_rate: f64,
    /// Extra seconds a stalled all-reduce attempt takes. Stalls at or
    /// above the device group's timeout count as a timed-out round and
    /// trigger a backoff retry.
    pub link_stall_sec: f64,
    /// Probability in `[0, 1]` that one physical shard-read attempt in
    /// the paged feature store fails with a transient I/O error. The
    /// store retries with seeded-jitter backoff, so numerics are
    /// untouched unless the retry budget is exhausted.
    pub io_failure_rate: f64,
    /// Probability in `[0, 1]` that a shard read stalls (NVMe hiccup).
    pub io_stall_rate: f64,
    /// Extra simulated seconds a stalled shard read takes. Timing-layer
    /// only — the stall is accounted, never slept.
    pub io_stall_sec: f64,
    /// Scheduled on-disk shard corruption: `(shard, epoch)` flips one
    /// payload byte of feature shard `shard` at the start of epoch
    /// `epoch` (epoch ordinal within the run, starting at 0). The flip
    /// happens in the training layer, which owns the store; it lives
    /// here so one `FaultPlan` describes the whole fault schedule.
    pub shard_corrupt: Vec<(usize, usize)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            alloc_failure_rate: 0.0,
            oom_steps: Vec::new(),
            capacity_jitter: 0.0,
            transfer_stall_rate: 0.0,
            transfer_stall_sec: 0.0,
            nan_loss_steps: Vec::new(),
            device_fail_steps: Vec::new(),
            straggler_factors: Vec::new(),
            link_stall_rate: 0.0,
            link_stall_sec: 0.0,
            io_failure_rate: 0.0,
            io_stall_rate: 0.0,
            io_stall_sec: 0.0,
            shard_corrupt: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// Checks rates and durations are in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("alloc_failure_rate", self.alloc_failure_rate),
            ("capacity_jitter", self.capacity_jitter),
            ("transfer_stall_rate", self.transfer_stall_rate),
            ("link_stall_rate", self.link_stall_rate),
            ("io_failure_rate", self.io_failure_rate),
            ("io_stall_rate", self.io_stall_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        for (name, sec) in [
            ("transfer_stall_sec", self.transfer_stall_sec),
            ("link_stall_sec", self.link_stall_sec),
            ("io_stall_sec", self.io_stall_sec),
        ] {
            if !sec.is_finite() || sec < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {sec}"));
            }
        }
        let mut seen_corrupt = BTreeSet::new();
        for &(shard, epoch) in &self.shard_corrupt {
            if !seen_corrupt.insert((shard, epoch)) {
                return Err(format!(
                    "shard_corrupt entry (shard {shard}, epoch {epoch}) is duplicated"
                ));
            }
        }
        let mut seen_fails = BTreeSet::new();
        for &(device, step) in &self.device_fail_steps {
            if !seen_fails.insert((device, step)) {
                return Err(format!(
                    "device_fail_steps entry (device {device}, step {step}) is duplicated"
                ));
            }
        }
        let mut seen_stragglers = BTreeSet::new();
        for &(device, factor) in &self.straggler_factors {
            if !factor.is_finite() || factor < 1.0 {
                return Err(format!(
                    "straggler_factors entry (device {device}, factor {factor}): \
                     slowdown factor must be finite and ≥ 1"
                ));
            }
            if !seen_stragglers.insert(device) {
                return Err(format!(
                    "straggler_factors entry (device {device}, factor {factor}): \
                     device {device} listed twice"
                ));
            }
        }
        Ok(())
    }

    /// [`FaultPlan::validate`] plus device-index range checks against a
    /// concrete group size — the plan itself does not know how many
    /// devices exist, so callers with a device group re-validate here.
    ///
    /// # Errors
    ///
    /// Returns a description naming the first out-of-range entry.
    pub fn validate_for_devices(&self, num_devices: usize) -> Result<(), String> {
        self.validate()?;
        for &(device, step) in &self.device_fail_steps {
            if device >= num_devices {
                return Err(format!(
                    "device_fail_steps entry (device {device}, step {step}): \
                     device index out of range for {num_devices} devices"
                ));
            }
        }
        for &(device, factor) in &self.straggler_factors {
            if device >= num_devices {
                return Err(format!(
                    "straggler_factors entry (device {device}, factor {factor}): \
                     device index out of range for {num_devices} devices"
                ));
            }
        }
        Ok(())
    }

    /// Whether the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.alloc_failure_rate == 0.0
            && self.oom_steps.is_empty()
            && self.capacity_jitter == 0.0
            && self.transfer_stall_rate == 0.0
            && self.nan_loss_steps.is_empty()
            && self.device_fail_steps.is_empty()
            && self.straggler_factors.is_empty()
            && self.link_stall_rate == 0.0
            && self.io_failure_rate == 0.0
            && self.io_stall_rate == 0.0
            && self.shard_corrupt.is_empty()
    }

    /// Builds the allocation-side injector for this plan.
    pub fn alloc_injector(&self) -> AllocFaultInjector {
        AllocFaultInjector {
            rate: self.alloc_failure_rate,
            jitter_fraction: self.capacity_jitter,
            oom_steps: self.oom_steps.iter().copied().collect(),
            rng: Pcg64Mcg::seed_from_u64(self.seed ^ ALLOC_STREAM_SALT),
            step: 0,
            step_fault_pending: false,
            withheld: 0,
            events: Vec::new(),
        }
    }

    /// Builds the transfer-side injector for this plan.
    pub fn transfer_injector(&self) -> TransferFaultInjector {
        TransferFaultInjector {
            stall_rate: self.transfer_stall_rate,
            stall_sec: self.transfer_stall_sec,
            rng: Pcg64Mcg::seed_from_u64(self.seed ^ TRANSFER_STREAM_SALT),
            transfers_seen: 0,
            events: Vec::new(),
        }
    }

    /// Builds the all-reduce-link injector for this plan. One injector
    /// should live for a whole run so its stream continues across
    /// epochs, mirroring the other injectors.
    pub fn link_injector(&self) -> LinkFaultInjector {
        LinkFaultInjector {
            stall_rate: self.link_stall_rate,
            stall_sec: self.link_stall_sec,
            rng: Pcg64Mcg::seed_from_u64(self.seed ^ LINK_STREAM_SALT),
            rounds_seen: 0,
            events: Vec::new(),
        }
    }

    /// Builds the storage-side injector for this plan. One injector
    /// should live for a whole run so its stream continues across
    /// epochs, mirroring the other injectors.
    pub fn storage_injector(&self) -> StorageFaultInjector {
        StorageFaultInjector {
            failure_rate: self.io_failure_rate,
            stall_rate: self.io_stall_rate,
            stall_sec: self.io_stall_sec,
            rng: Pcg64Mcg::seed_from_u64(self.seed ^ STORAGE_STREAM_SALT),
            events: Vec::new(),
        }
    }

    /// Whether the storage side of the plan can inject anything: shard
    /// reads failing or stalling, or scheduled on-disk corruption.
    pub fn has_storage_faults(&self) -> bool {
        self.io_failure_rate > 0.0 || self.io_stall_rate > 0.0 || !self.shard_corrupt.is_empty()
    }
}

/// Why an injected allocation failure fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocFaultKind {
    /// Random failure drawn against
    /// [`FaultPlan::alloc_failure_rate`].
    Spurious,
    /// Deterministic failure from [`FaultPlan::oom_steps`].
    StepScheduled,
    /// Capacity withheld by jitter made the allocation not fit.
    CapacityJitter,
}

/// One injected fault, as recorded for the recovery log.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// An allocation was made to fail.
    AllocFailure {
        /// Step index active when the fault fired.
        step: usize,
        /// Bytes the allocation requested.
        requested: usize,
        /// Which mechanism fired.
        kind: AllocFaultKind,
    },
    /// A transfer was stalled.
    TransferStall {
        /// Zero-based index of the transfer within this injector's life.
        transfer_index: u64,
        /// Extra seconds added.
        stall_sec: f64,
    },
    /// A step's loss was poisoned to NaN (from
    /// [`FaultPlan::nan_loss_steps`]).
    NanLoss {
        /// Global step index whose loss was poisoned.
        step: usize,
    },
    /// A device of a simulated group failed mid-epoch (from
    /// [`FaultPlan::device_fail_steps`]).
    DeviceFail {
        /// Which device failed.
        device: usize,
        /// Micro-batches the device completed from its queue before
        /// failing.
        completed_steps: usize,
    },
    /// An all-reduce attempt stalled on the interconnect.
    LinkStall {
        /// Zero-based index of the all-reduce attempt within this
        /// injector's life.
        round: u64,
        /// Extra seconds added (or lost to the timeout).
        stall_sec: f64,
    },
    /// A physical shard-read attempt was made to fail with a transient
    /// I/O error (from [`FaultPlan::io_failure_rate`]).
    StorageIoError {
        /// Feature shard whose read failed.
        shard: usize,
        /// Zero-based attempt index for this logical read.
        attempt: usize,
    },
    /// A shard read stalled (from [`FaultPlan::io_stall_rate`]).
    StorageStall {
        /// Feature shard whose read stalled.
        shard: usize,
        /// Extra simulated seconds added.
        stall_sec: f64,
    },
    /// A shard payload byte was flipped on disk (from
    /// [`FaultPlan::shard_corrupt`]).
    ShardCorrupted {
        /// Feature shard that was corrupted.
        shard: usize,
        /// Epoch ordinal at which the flip was applied.
        epoch: usize,
    },
}

/// Common surface of every fault injector: recorded events can be
/// removed for the recovery log / trace, or counted in place. Inherent
/// methods of the same names exist on each injector; this trait lets
/// generic plumbing (event forwarding into `betty-trace`) treat the
/// alloc, transfer, and link injectors uniformly.
pub trait FaultEvents {
    /// Removes and returns every event recorded since the last drain.
    fn drain_events(&mut self) -> Vec<FaultEvent>;
    /// Number of events currently recorded (not yet drained).
    fn pending_events(&self) -> usize;
}

/// Runtime state injecting allocation faults into a
/// [`Device`](crate::Device).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocFaultInjector {
    rate: f64,
    jitter_fraction: f64,
    oom_steps: BTreeSet<usize>,
    rng: Pcg64Mcg,
    step: usize,
    step_fault_pending: bool,
    withheld: usize,
    events: Vec<FaultEvent>,
}

impl AllocFaultInjector {
    /// Marks a step boundary: arms any scheduled step fault and redraws
    /// the capacity withheld by jitter for this step.
    pub(crate) fn begin_step(&mut self, step: usize, capacity: usize) {
        self.step = step;
        self.step_fault_pending = self.oom_steps.contains(&step);
        self.withheld = if self.jitter_fraction > 0.0 {
            let max_withheld = self.jitter_fraction * capacity as f64;
            (self.rng.gen::<f64>() * max_withheld) as usize
        } else {
            0
        };
    }

    /// Decides whether the allocation of `bytes` (with `current` in use
    /// of `capacity`) should be made to fail; records the event if so.
    pub(crate) fn check_alloc(
        &mut self,
        bytes: usize,
        current: usize,
        capacity: usize,
    ) -> Option<AllocFaultKind> {
        let kind = if self.step_fault_pending {
            self.step_fault_pending = false;
            Some(AllocFaultKind::StepScheduled)
        } else if self.rate > 0.0 && self.rng.gen_bool(self.rate) {
            Some(AllocFaultKind::Spurious)
        } else if self.withheld > 0
            && current.saturating_add(bytes) > capacity.saturating_sub(self.withheld)
        {
            Some(AllocFaultKind::CapacityJitter)
        } else {
            None
        };
        if let Some(kind) = kind {
            self.events.push(FaultEvent::AllocFailure {
                step: self.step,
                requested: bytes,
                kind,
            });
        }
        kind
    }

    /// Removes and returns every event recorded since the last drain.
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of events currently recorded (not yet drained).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

impl FaultEvents for AllocFaultInjector {
    fn drain_events(&mut self) -> Vec<FaultEvent> {
        AllocFaultInjector::drain_events(self)
    }

    fn pending_events(&self) -> usize {
        AllocFaultInjector::pending_events(self)
    }
}

/// Runtime state injecting stalls into a
/// [`TransferModel`](crate::TransferModel).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFaultInjector {
    stall_rate: f64,
    stall_sec: f64,
    rng: Pcg64Mcg,
    transfers_seen: u64,
    events: Vec<FaultEvent>,
}

impl TransferFaultInjector {
    /// Decides whether this transfer stalls; returns the extra seconds
    /// and records the event if so.
    pub(crate) fn check_transfer(&mut self) -> Option<f64> {
        let index = self.transfers_seen;
        self.transfers_seen += 1;
        if self.stall_rate > 0.0 && self.rng.gen_bool(self.stall_rate) {
            self.events.push(FaultEvent::TransferStall {
                transfer_index: index,
                stall_sec: self.stall_sec,
            });
            Some(self.stall_sec)
        } else {
            None
        }
    }

    /// Removes and returns every event recorded since the last drain.
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of events currently recorded (not yet drained).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

impl FaultEvents for TransferFaultInjector {
    fn drain_events(&mut self) -> Vec<FaultEvent> {
        TransferFaultInjector::drain_events(self)
    }

    fn pending_events(&self) -> usize {
        TransferFaultInjector::pending_events(self)
    }
}

/// Runtime state injecting stalls into simulated all-reduce rounds.
///
/// Unlike the other injectors this one is consulted by the elastic
/// device-group layer (crate `betty`), so its check method is public.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultInjector {
    stall_rate: f64,
    stall_sec: f64,
    rng: Pcg64Mcg,
    rounds_seen: u64,
    events: Vec<FaultEvent>,
}

impl LinkFaultInjector {
    /// Decides whether this all-reduce attempt stalls; returns the
    /// extra seconds and records the event if so. Draws nothing when
    /// the stall rate is zero, so a no-fault plan leaves the generator
    /// untouched.
    pub fn check_round(&mut self) -> Option<f64> {
        let round = self.rounds_seen;
        self.rounds_seen += 1;
        if self.stall_rate > 0.0 && self.rng.gen_bool(self.stall_rate) {
            self.events.push(FaultEvent::LinkStall {
                round,
                stall_sec: self.stall_sec,
            });
            Some(self.stall_sec)
        } else {
            None
        }
    }

    /// Seeded jitter in `[0, 1)` for exponential-backoff delays, drawn
    /// from this injector's own stream so backoff timing is replayable.
    pub fn backoff_jitter(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Removes and returns every event recorded since the last drain.
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of events currently recorded (not yet drained).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

impl FaultEvents for LinkFaultInjector {
    fn drain_events(&mut self) -> Vec<FaultEvent> {
        LinkFaultInjector::drain_events(self)
    }

    fn pending_events(&self) -> usize {
        LinkFaultInjector::pending_events(self)
    }
}

/// Verdict for one physical shard-read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StorageReadFault {
    /// The attempt should fail with a transient I/O error.
    pub fail: bool,
    /// Simulated NVMe stall seconds charged to the attempt.
    pub stall_sec: f64,
}

/// Runtime state injecting storage faults into the paged feature
/// store's shard reads.
///
/// Like [`LinkFaultInjector`] this is consulted from outside the
/// device crate (the training layer adapts it onto the store), so its
/// check methods are public.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageFaultInjector {
    failure_rate: f64,
    stall_rate: f64,
    stall_sec: f64,
    rng: Pcg64Mcg,
    events: Vec<FaultEvent>,
}

impl StorageFaultInjector {
    /// Decides whether this shard-read attempt fails and/or stalls;
    /// records the event(s) if so. Draws nothing when both rates are
    /// zero, so a no-fault plan leaves the generator untouched.
    pub fn check_read(&mut self, shard: usize, attempt: usize) -> StorageReadFault {
        let mut verdict = StorageReadFault::default();
        if self.failure_rate > 0.0 && self.rng.gen_bool(self.failure_rate) {
            verdict.fail = true;
            self.events.push(FaultEvent::StorageIoError { shard, attempt });
        }
        if self.stall_rate > 0.0 && self.rng.gen_bool(self.stall_rate) {
            verdict.stall_sec = self.stall_sec;
            self.events.push(FaultEvent::StorageStall {
                shard,
                stall_sec: self.stall_sec,
            });
        }
        verdict
    }

    /// Seeded jitter in `[0, 1)` for retry-backoff delays, drawn from
    /// this injector's own stream so backoff timing is replayable.
    pub fn backoff_jitter(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Records a scheduled on-disk corruption applied by the training
    /// layer. Consumes no randomness.
    pub fn note_corruption(&mut self, shard: usize, epoch: usize) {
        self.events.push(FaultEvent::ShardCorrupted { shard, epoch });
    }

    /// Removes and returns every event recorded since the last drain.
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of events currently recorded (not yet drained).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

impl FaultEvents for StorageFaultInjector {
    fn drain_events(&mut self) -> Vec<FaultEvent> {
        StorageFaultInjector::drain_events(self)
    }

    fn pending_events(&self) -> usize {
        StorageFaultInjector::pending_events(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            alloc_failure_rate: 0.3,
            oom_steps: vec![2],
            capacity_jitter: 0.5,
            transfer_stall_rate: 0.25,
            transfer_stall_sec: 1e-3,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn validate_accepts_default_and_rejects_bad_rates() {
        assert!(FaultPlan::default().validate().is_ok());
        assert!(plan(1).validate().is_ok());
        let bad = FaultPlan {
            alloc_failure_rate: 1.5,
            ..FaultPlan::default()
        };
        assert!(bad.validate().unwrap_err().contains("alloc_failure_rate"));
        let bad = FaultPlan {
            transfer_stall_sec: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn noop_detection() {
        assert!(FaultPlan::default().is_noop());
        assert!(!plan(0).is_noop());
        let steps_only = FaultPlan {
            oom_steps: vec![5],
            ..FaultPlan::default()
        };
        assert!(!steps_only.is_noop());
        let nan_only = FaultPlan {
            nan_loss_steps: vec![3],
            ..FaultPlan::default()
        };
        assert!(!nan_only.is_noop());
    }

    #[test]
    fn same_seed_injects_identical_sequences() {
        let run = |seed: u64| {
            let mut inj = plan(seed).alloc_injector();
            let mut outcomes = Vec::new();
            for step in 0..6 {
                inj.begin_step(step, 1000);
                for _ in 0..4 {
                    outcomes.push(inj.check_alloc(200, 300, 1000));
                }
            }
            (outcomes, inj.drain_events())
        };
        let (a_out, a_ev) = run(9);
        let (b_out, b_ev) = run(9);
        assert_eq!(a_out, b_out);
        assert_eq!(a_ev, b_ev);
        let (c_out, _) = run(10);
        assert_ne!(a_out, c_out, "different seeds should diverge");
    }

    #[test]
    fn step_scheduled_fault_fires_once_on_first_alloc() {
        let p = FaultPlan {
            oom_steps: vec![1],
            ..FaultPlan::default()
        };
        let mut inj = p.alloc_injector();
        inj.begin_step(0, 1000);
        assert_eq!(inj.check_alloc(10, 0, 1000), None);
        inj.begin_step(1, 1000);
        assert_eq!(
            inj.check_alloc(10, 0, 1000),
            Some(AllocFaultKind::StepScheduled)
        );
        assert_eq!(inj.check_alloc(10, 0, 1000), None, "fires only once");
        inj.begin_step(2, 1000);
        assert_eq!(inj.check_alloc(10, 0, 1000), None);
        let events = inj.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0],
            FaultEvent::AllocFailure {
                step: 1,
                requested: 10,
                kind: AllocFaultKind::StepScheduled,
            }
        );
        assert_eq!(inj.pending_events(), 0, "drain empties the queue");
    }

    #[test]
    fn zero_rate_plan_never_draws_or_fires() {
        let mut inj = FaultPlan::default().alloc_injector();
        let pristine = inj.clone();
        for step in 0..10 {
            inj.begin_step(step, 100);
            for _ in 0..8 {
                assert_eq!(inj.check_alloc(50, 40, 100), None);
            }
        }
        assert!(inj.drain_events().is_empty());
        // No randomness consumed: generator state is untouched.
        assert_eq!(inj.rng, pristine.rng);
    }

    #[test]
    fn capacity_jitter_only_bites_near_the_limit() {
        let p = FaultPlan {
            capacity_jitter: 0.5,
            seed: 3,
            ..FaultPlan::default()
        };
        let mut inj = p.alloc_injector();
        let mut jitter_faults = 0;
        for step in 0..64 {
            inj.begin_step(step, 1000);
            // Tiny allocation far from the limit: never faulted.
            assert_eq!(inj.check_alloc(10, 0, 1000), None);
            // Allocation crossing into the withheld band may fault.
            if inj.check_alloc(400, 550, 1000).is_some() {
                jitter_faults += 1;
            }
        }
        assert!(jitter_faults > 0, "expected some jitter faults in 64 steps");
        assert!(jitter_faults < 64, "jitter must not fire every step");
        assert!(inj
            .drain_events()
            .iter()
            .all(|e| matches!(
                e,
                FaultEvent::AllocFailure {
                    kind: AllocFaultKind::CapacityJitter,
                    ..
                }
            )));
    }

    #[test]
    fn validate_names_the_offending_device_fault_entry() {
        let dup = FaultPlan {
            device_fail_steps: vec![(1, 3), (0, 2), (1, 3)],
            ..FaultPlan::default()
        };
        let msg = dup.validate().unwrap_err();
        assert!(msg.contains("(device 1, step 3)"), "{msg}");
        assert!(msg.contains("duplicated"), "{msg}");

        let negative = FaultPlan {
            straggler_factors: vec![(0, 2.0), (2, -0.5)],
            ..FaultPlan::default()
        };
        let msg = negative.validate().unwrap_err();
        assert!(msg.contains("(device 2, factor -0.5)"), "{msg}");

        let twice = FaultPlan {
            straggler_factors: vec![(0, 2.0), (0, 3.0)],
            ..FaultPlan::default()
        };
        assert!(twice.validate().unwrap_err().contains("listed twice"));

        let bad_rate = FaultPlan {
            link_stall_rate: 2.0,
            ..FaultPlan::default()
        };
        assert!(bad_rate.validate().unwrap_err().contains("link_stall_rate"));
    }

    #[test]
    fn validate_for_devices_checks_ranges() {
        let plan = FaultPlan {
            device_fail_steps: vec![(3, 0)],
            straggler_factors: vec![(1, 2.0)],
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_ok(), "plan alone cannot know the group");
        assert!(plan.validate_for_devices(4).is_ok());
        let msg = plan.validate_for_devices(3).unwrap_err();
        assert!(msg.contains("(device 3, step 0)"), "{msg}");
        assert!(msg.contains("out of range for 3 devices"), "{msg}");
        let straggler_oob = FaultPlan {
            straggler_factors: vec![(5, 1.5)],
            ..FaultPlan::default()
        };
        let msg = straggler_oob.validate_for_devices(2).unwrap_err();
        assert!(msg.contains("(device 5, factor 1.5)"), "{msg}");
    }

    #[test]
    fn device_faults_make_the_plan_non_noop() {
        for plan in [
            FaultPlan {
                device_fail_steps: vec![(0, 1)],
                ..FaultPlan::default()
            },
            FaultPlan {
                straggler_factors: vec![(0, 2.0)],
                ..FaultPlan::default()
            },
            FaultPlan {
                link_stall_rate: 0.5,
                ..FaultPlan::default()
            },
        ] {
            assert!(!plan.is_noop(), "{plan:?}");
        }
    }

    #[test]
    fn link_stalls_are_seeded_and_recorded() {
        let run = |seed: u64| {
            let mut inj = FaultPlan {
                seed,
                link_stall_rate: 0.5,
                link_stall_sec: 0.25,
                ..FaultPlan::default()
            }
            .link_injector();
            let stalls: Vec<Option<f64>> = (0..32).map(|_| inj.check_round()).collect();
            (stalls, inj.drain_events())
        };
        let (a, a_ev) = run(11);
        let (b, b_ev) = run(11);
        assert_eq!(a, b);
        assert_eq!(a_ev, b_ev);
        let stalled = a.iter().flatten().count();
        assert!(stalled > 0 && stalled < 32, "rate 0.5 over 32 rounds");
        assert_eq!(a_ev.len(), stalled);
        assert!(a_ev.iter().all(|e| matches!(
            e,
            FaultEvent::LinkStall {
                stall_sec,
                ..
            } if *stall_sec == 0.25
        )));
    }

    #[test]
    fn zero_rate_link_injector_never_draws() {
        let mut inj = FaultPlan::default().link_injector();
        let pristine = inj.clone();
        for _ in 0..16 {
            assert_eq!(inj.check_round(), None);
        }
        assert_eq!(inj.rng, pristine.rng, "no randomness consumed");
    }

    #[test]
    fn fault_events_trait_unifies_the_injectors() {
        let plan = FaultPlan {
            oom_steps: vec![0],
            transfer_stall_rate: 1.0,
            transfer_stall_sec: 0.1,
            link_stall_rate: 1.0,
            link_stall_sec: 0.2,
            ..FaultPlan::default()
        };
        let mut alloc = plan.alloc_injector();
        alloc.begin_step(0, 1000);
        alloc.check_alloc(10, 0, 1000);
        let mut transfer = plan.transfer_injector();
        transfer.check_transfer();
        let mut link = plan.link_injector();
        link.check_round();
        let injectors: Vec<&mut dyn FaultEvents> = vec![&mut alloc, &mut transfer, &mut link];
        for inj in injectors {
            assert_eq!(inj.pending_events(), 1);
            assert_eq!(inj.drain_events().len(), 1);
            assert_eq!(inj.pending_events(), 0);
        }
    }

    #[test]
    fn storage_faults_are_seeded_and_recorded() {
        let run = |seed: u64| {
            let mut inj = FaultPlan {
                seed,
                io_failure_rate: 0.4,
                io_stall_rate: 0.25,
                io_stall_sec: 2e-3,
                ..FaultPlan::default()
            }
            .storage_injector();
            let verdicts: Vec<StorageReadFault> =
                (0..40).map(|i| inj.check_read(i % 7, 0)).collect();
            let jitter: Vec<u64> = (0..4).map(|_| inj.backoff_jitter().to_bits()).collect();
            (verdicts, jitter, inj.drain_events())
        };
        let (a, a_j, a_ev) = run(13);
        let (b, b_j, b_ev) = run(13);
        assert_eq!(a, b);
        assert_eq!(a_j, b_j);
        assert_eq!(a_ev, b_ev);
        let failed = a.iter().filter(|v| v.fail).count();
        let stalled = a.iter().filter(|v| v.stall_sec > 0.0).count();
        assert!(failed > 0, "rate 0.4 over 40 reads should fail some");
        assert!(stalled > 0, "rate 0.25 over 40 reads should stall some");
        assert_eq!(a_ev.len(), failed + stalled);
        let (c, _, _) = run(14);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn zero_rate_storage_injector_never_draws() {
        let mut inj = FaultPlan::default().storage_injector();
        let pristine = inj.clone();
        for shard in 0..16 {
            assert_eq!(inj.check_read(shard, 0), StorageReadFault::default());
        }
        inj.note_corruption(3, 1);
        assert_eq!(inj.rng, pristine.rng, "no randomness consumed");
        assert_eq!(
            inj.drain_events(),
            vec![FaultEvent::ShardCorrupted { shard: 3, epoch: 1 }]
        );
    }

    #[test]
    fn storage_faults_make_the_plan_non_noop() {
        for plan in [
            FaultPlan {
                io_failure_rate: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                io_stall_rate: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                shard_corrupt: vec![(0, 1)],
                ..FaultPlan::default()
            },
        ] {
            assert!(!plan.is_noop(), "{plan:?}");
            assert!(plan.has_storage_faults(), "{plan:?}");
        }
        assert!(!FaultPlan::default().has_storage_faults());
        assert!(!plan(0).has_storage_faults());
    }

    #[test]
    fn validate_names_the_offending_storage_entry() {
        let dup = FaultPlan {
            shard_corrupt: vec![(2, 1), (0, 0), (2, 1)],
            ..FaultPlan::default()
        };
        let msg = dup.validate().unwrap_err();
        assert!(msg.contains("(shard 2, epoch 1)"), "{msg}");
        assert!(msg.contains("duplicated"), "{msg}");

        let bad_rate = FaultPlan {
            io_failure_rate: -0.5,
            ..FaultPlan::default()
        };
        assert!(bad_rate.validate().unwrap_err().contains("io_failure_rate"));
        let bad_sec = FaultPlan {
            io_stall_sec: f64::INFINITY,
            ..FaultPlan::default()
        };
        assert!(bad_sec.validate().unwrap_err().contains("io_stall_sec"));
    }

    #[test]
    fn storage_injector_joins_the_fault_events_trait() {
        let mut inj = FaultPlan {
            io_failure_rate: 1.0,
            ..FaultPlan::default()
        }
        .storage_injector();
        assert!(inj.check_read(0, 0).fail);
        let dyn_inj: &mut dyn FaultEvents = &mut inj;
        assert_eq!(dyn_inj.pending_events(), 1);
        assert_eq!(
            dyn_inj.drain_events(),
            vec![FaultEvent::StorageIoError { shard: 0, attempt: 0 }]
        );
        assert_eq!(dyn_inj.pending_events(), 0);
    }

    #[test]
    fn transfer_stalls_are_seeded_and_recorded() {
        let run = |seed: u64| {
            let mut inj = plan(seed).transfer_injector();
            let stalls: Vec<Option<f64>> =
                (0..40).map(|_| inj.check_transfer()).collect();
            (stalls, inj.drain_events())
        };
        let (a, a_ev) = run(4);
        let (b, b_ev) = run(4);
        assert_eq!(a, b);
        assert_eq!(a_ev, b_ev);
        let stalled = a.iter().flatten().count();
        assert!(stalled > 0, "rate 0.25 over 40 transfers should stall some");
        assert_eq!(a_ev.len(), stalled);
        assert!(a.iter().flatten().all(|&s| s == 1e-3));
    }
}

//! Simulated accelerator for the Betty reproduction.
//!
//! The paper's experiments run on a 24 GB RTX 6000; every memory number it
//! reports is a byte count of tensors and graph blocks resident on the
//! device. This crate reproduces that accounting without a GPU:
//!
//! * [`Device`] — a capacity-limited allocation ledger with per-category
//!   tracking, peak-watermark recording, and out-of-memory errors. The
//!   trainer registers every tensor it would place on the accelerator; an
//!   allocation pushing `current > capacity` fails exactly where a real GPU
//!   would OOM.
//! * [`TransferModel`] — a PCIe-like host↔device transfer cost model
//!   (latency + bytes/bandwidth), which stands in for the measured "data
//!   movement time" of Fig. 14.
//! * [`MemoryEstimator`] — the paper's analytical model (§4.4.3, Table 3,
//!   Eq. 5) that predicts a micro-batch's peak memory *without executing
//!   it*; this drives memory-aware re-partitioning.
//!
//! # Example
//!
//! ```
//! use betty_device::{Device, MemoryCategory};
//!
//! let mut dev = Device::new(1 << 20); // 1 MiB
//! let a = dev.alloc(512 * 1024, MemoryCategory::InputFeatures)?;
//! assert!(dev.alloc(768 * 1024, MemoryCategory::HiddenActivations).is_err());
//! dev.free(a);
//! assert_eq!(dev.current_bytes(), 0);
//! assert_eq!(dev.peak_bytes(), 512 * 1024);
//! # Ok::<(), betty_device::OomError>(())
//! ```

#![deny(missing_docs)]

mod device;
mod estimator;
mod fault;
mod transfer;

pub use device::{AllocationId, Device, MemoryCategory, OomError};
pub use estimator::{AggregatorKind, MemoryEstimate, MemoryEstimator, ModelShape};
pub use fault::{
    AllocFaultInjector, AllocFaultKind, FaultEvent, FaultEvents, FaultPlan, LinkFaultInjector,
    StorageFaultInjector, StorageReadFault, TransferFaultInjector,
};
pub use transfer::TransferModel;

// Re-exported so ledger consumers can drain timelines without a direct
// betty-trace dependency.
pub use betty_trace::{MemEvent, MemTimeline};

/// Bytes per stored value (`f32` everywhere in this reproduction).
pub const BYTES_PER_VALUE: usize = 4;

/// Gibibytes → bytes convenience (the paper quotes capacities in GB).
pub const fn gib(n: usize) -> usize {
    n * (1 << 30)
}

//! The paper's analytical memory model (§4.4.3, Table 3, Eq. 5).
//!
//! Betty's memory-aware re-partitioning needs the peak memory of a
//! micro-batch *before* executing it. The estimate counts eight
//! contributions; items (6) aggregator intermediates and (7) gradients never
//! coexist at full size (intermediates are freed as backprop consumes them),
//! so the peak takes their maximum:
//!
//! ```text
//! peak = (1) params + (2) input features + (3) labels + (4) blocks
//!      + (5) hidden outputs + (8) optimizer states + max((6), (7))
//! ```

use betty_graph::Batch;
use betty_tensor::DType;

use crate::BYTES_PER_VALUE;

/// Values the loss head adds to the tape regardless of batch size: the
/// scalar cross-entropy output and the micro-batch gradient rescale.
const LOSS_TAPE_VALUES: usize = 2;

/// Neighbor-aggregation flavour (Table 1 of the paper), plus attention for
/// GAT models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregatorKind {
    /// Degree-normalized sum of neighbor features.
    Mean,
    /// Unnormalized sum.
    Sum,
    /// Max-pooling over a learned per-neighbor transform.
    Pool,
    /// Sequence LSTM over the neighbor list — the memory-hungry one.
    Lstm,
    /// Multi-head attention (GAT's built-in aggregation).
    Attention {
        /// Number of attention heads.
        heads: usize,
    },
}

impl AggregatorKind {
    /// Human-readable name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AggregatorKind::Mean => "mean",
            AggregatorKind::Sum => "sum",
            AggregatorKind::Pool => "pool",
            AggregatorKind::Lstm => "lstm",
            AggregatorKind::Attention { .. } => "attention",
        }
    }
}

/// Static shape of the GNN being trained — everything the estimator needs
/// that does not depend on the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelShape {
    /// Raw input feature dimension (`H_in`).
    pub in_dim: usize,
    /// Hidden dimension (`h`).
    pub hidden_dim: usize,
    /// Output classes (last layer width).
    pub num_classes: usize,
    /// Number of GNN layers (`n`).
    pub num_layers: usize,
    /// Aggregator used by every layer.
    pub aggregator: AggregatorKind,
    /// Model parameter count excluding the aggregator (`NP_GNN`), in values.
    pub params_gnn: usize,
    /// Aggregator parameter count (`NP_Agg`), in values.
    pub params_agg: usize,
}

impl ModelShape {
    /// Feature width entering layer `i` (raw features for layer 0).
    pub fn layer_in_dim(&self, layer: usize) -> usize {
        if layer == 0 {
            self.in_dim
        } else {
            self.hidden_dim
        }
    }

    /// Feature width leaving layer `i` (classes for the last layer).
    pub fn layer_out_dim(&self, layer: usize) -> usize {
        if layer + 1 == self.num_layers {
            self.num_classes
        } else {
            self.hidden_dim
        }
    }
}

/// Estimated memory of one micro-batch, broken into the paper's eight
/// contributions. All fields are in **bytes**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryEstimate {
    /// (1) model parameters.
    pub parameters: usize,
    /// (2) input node features, `N_in × H_in`.
    pub input_features: usize,
    /// (3) output labels, `N_out`.
    pub labels: usize,
    /// (4) block structure, `3 · E` per block.
    pub blocks: usize,
    /// (5) hidden-layer outputs, `Σ N_i × h_i`.
    pub hidden_outputs: usize,
    /// (6) aggregator intermediates (Eq. 5 for LSTM).
    pub aggregator_intermediate: usize,
    /// (7) parameter gradients.
    pub gradients: usize,
    /// (8) optimizer state (Adam: 2 × parameters).
    pub optimizer_states: usize,
    /// (9) double-buffered prefetch staging: the *next* micro-batch's
    /// transfer data held on-device while this one computes. Zero unless a
    /// planner with prefetch accounting fills it in
    /// ([`MemoryEstimator::estimate`] itself cannot know the neighbor).
    pub prefetch_staging: usize,
    /// (10) pinned hot-set reservation of an out-of-core feature store:
    /// `min(cache budget, total feature bytes)`, constant across steps.
    /// Zero for dense in-memory features; filled in by a planner built
    /// with feature-cache accounting (the estimator itself cannot know
    /// which backend serves the features).
    pub feature_cache: usize,
}

impl MemoryEstimate {
    /// Contributions resident for the whole step.
    pub fn stable_bytes(&self) -> usize {
        self.parameters
            + self.input_features
            + self.labels
            + self.blocks
            + self.hidden_outputs
            + self.optimizer_states
            + self.prefetch_staging
            + self.feature_cache
    }

    /// Bytes that cross the host→device link for the estimated batch —
    /// exactly what a neighboring step must reserve to prefetch it.
    pub fn transfer_bytes(&self) -> usize {
        self.blocks + self.input_features + self.labels
    }

    /// Peak = stable + max(aggregator intermediates, gradients): the two
    /// transient contributions dominate at different phases of the step.
    pub fn peak_bytes(&self) -> usize {
        self.stable_bytes() + self.aggregator_intermediate.max(self.gradients)
    }

    /// Sum of every contribution (upper bound, never all-resident).
    pub fn total_bytes(&self) -> usize {
        self.stable_bytes() + self.aggregator_intermediate + self.gradients
    }
}

/// Implements the paper's per-micro-batch memory estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryEstimator {
    shape: ModelShape,
    lstm_values_per_node: usize,
    pool_expansion: usize,
    feature_dtype: DType,
    activation_dtype: DType,
}

impl MemoryEstimator {
    /// Creates an estimator for a model shape.
    ///
    /// The LSTM constant defaults to the paper's 18 intermediate values per
    /// sequence element (Eq. 5); it is implementation-dependent — use
    /// [`MemoryEstimator::with_lstm_constant`] to calibrate to a different
    /// backend. Both storage dtypes default to f32, which reproduces the
    /// paper's byte counts exactly.
    pub fn new(shape: ModelShape) -> Self {
        Self {
            shape,
            lstm_values_per_node: 18,
            pool_expansion: 2,
            feature_dtype: DType::F32,
            activation_dtype: DType::F32,
        }
    }

    /// Overrides the per-node LSTM intermediate constant of Eq. 5.
    pub fn with_lstm_constant(mut self, values_per_node: usize) -> Self {
        self.lstm_values_per_node = values_per_node;
        self
    }

    /// Sets the storage width of input node features: item (2) is charged
    /// at this width (the trainer stages gathered features at the feature
    /// store's dtype).
    pub fn with_feature_dtype(mut self, dtype: DType) -> Self {
        self.feature_dtype = dtype;
        self
    }

    /// Sets the storage width of forward activations: items (5) and the
    /// per-layer share of (6) are charged at this width. Parameter copies
    /// and the loss head stay f32, mirroring the tape (leaves and scalars
    /// are never quantized).
    pub fn with_activation_dtype(mut self, dtype: DType) -> Self {
        self.activation_dtype = dtype;
        self
    }

    /// The feature storage width this estimator charges for item (2).
    pub fn feature_dtype(&self) -> DType {
        self.feature_dtype
    }

    /// The activation storage width this estimator charges items (5)/(6) at.
    pub fn activation_dtype(&self) -> DType {
        self.activation_dtype
    }

    /// The model shape this estimator was built for.
    pub fn shape(&self) -> &ModelShape {
        &self.shape
    }

    /// Estimates the memory of training one (micro-)batch.
    ///
    /// # Panics
    ///
    /// Panics if the batch's layer count differs from the model shape.
    pub fn estimate(&self, batch: &Batch) -> MemoryEstimate {
        let s = &self.shape;
        assert_eq!(
            batch.num_layers(),
            s.num_layers,
            "batch has {} layers but model expects {}",
            batch.num_layers(),
            s.num_layers
        );
        let n_in = batch.input_nodes().len();
        let n_out = batch.output_nodes().len();

        // (4) blocks: 3 values per edge (two endpoints + weight).
        let block_values: usize = batch.blocks().iter().map(|b| b.storage_values()).sum();

        // (5) hidden outputs: each layer's destination count × output width.
        let hidden_values: usize = batch
            .blocks()
            .iter()
            .enumerate()
            .map(|(i, b)| b.num_dst() * s.layer_out_dim(i))
            .sum();

        let params = s.params_gnn + s.params_agg;

        // (6) aggregator intermediates and per-layer workspace, plus the
        // tape contributions that exist once per step rather than per
        // layer: the define-by-run graph binds a copy of every parameter
        // as a leaf (so the tape holds params *in addition to* the
        // resident copy of item (1)), and the loss head tapes the
        // cross-entropy output and micro-batch rescale.
        let layer_agg_values: usize = batch
            .blocks()
            .iter()
            .enumerate()
            .map(|(i, b)| {
                self.aggregator_values(
                    b,
                    s.layer_in_dim(i),
                    s.layer_out_dim(i),
                    i + 1 == s.num_layers,
                )
            })
            .sum();

        // Storage widths. Per-layer tensors (hidden outputs and aggregator
        // workspace) are stored at the activation width; input features at
        // the feature store's width. The taped parameter copies and the
        // loss head's two scalars stay f32 — the tape never quantizes
        // leaves or scalars — as do items (1), (3), (4), (7), and (8).
        let feat_w = self.feature_dtype.bytes_per_value();
        let act_w = self.activation_dtype.bytes_per_value();
        MemoryEstimate {
            parameters: params * BYTES_PER_VALUE,
            input_features: n_in * s.in_dim * feat_w,
            labels: n_out * BYTES_PER_VALUE,
            blocks: block_values * BYTES_PER_VALUE,
            hidden_outputs: hidden_values * act_w,
            aggregator_intermediate: layer_agg_values * act_w
                + (params + LOSS_TAPE_VALUES) * BYTES_PER_VALUE,
            gradients: params * BYTES_PER_VALUE,
            optimizer_states: 2 * params * BYTES_PER_VALUE,
            prefetch_staging: 0,
            feature_cache: 0,
        }
    }

    /// Per-block aggregator intermediate + layer workspace size, in values.
    ///
    /// The dominant term follows the paper (edge-expanded messages for
    /// Mean/Sum/Pool; Eq. 5's bucketed sequence tensor for LSTM); the
    /// remaining terms account for the define-by-run tape of this
    /// implementation (self-feature gather, segment outputs, and the two
    /// linear maps' workspace), which a real framework also materializes.
    fn aggregator_values(
        &self,
        block: &betty_graph::Block,
        d: usize,
        o: usize,
        is_last_layer: bool,
    ) -> usize {
        let e = block.num_edges();
        let n_dst = block.num_dst();
        let n_src = block.num_src();
        // SAGE wrapper workspace: h_dst gather + aggregated output (n·d
        // each) and the fc_self/fc_neigh matmul+bias pairs plus their sum
        // (n·o each). Hidden layers additionally tape an activation
        // output; the layer's *named* output (activation, or the raw sum
        // on the last layer) is already counted in item (5), so it is
        // excluded here either way.
        let activation = if is_last_layer { 0 } else { n_dst * o };
        let sage_overhead = 2 * n_dst * d + 4 * n_dst * o + activation;
        match self.shape.aggregator {
            // Mean/Sum run fused (no [E, d] message tensor): only the
            // layer workspace remains.
            AggregatorKind::Mean | AggregatorKind::Sum => sage_overhead,
            // Pool additionally tapes the learned transform of every
            // message (matmul, bias, relu).
            AggregatorKind::Pool => 2 * self.pool_expansion * e * d + sage_overhead,
            // Eq. 5: Σ_buckets L_i · B_i · d · c — the nodes fed through
            // the LSTM at each in-degree — plus per-bucket scatter outputs.
            AggregatorKind::Lstm => {
                let buckets = block.exact_degree_buckets();
                let per_node: usize = buckets.iter().map(|(l, nodes)| l * nodes.len()).sum();
                per_node * d * self.lstm_values_per_node
                    + 2 * buckets.len() * n_dst * d
                    + sage_overhead
            }
            // GAT: shared projection (n_src·heads·d_head, taped twice),
            // per-head edge tensors (scores ~5·E, gathered + weighted
            // features 2·E·d_head, pooled n_dst·d_head + n_src·d_head),
            // and the merge output. Hidden layers concatenate heads
            // (d_head = o / heads); the final layer mean-merges full-width
            // heads (d_head = o).
            AggregatorKind::Attention { heads } => {
                let heads = heads.max(1);
                let head_dim = if is_last_layer { o } else { o.div_ceil(heads) };
                let proj = heads * head_dim;
                2 * n_src * proj
                    + heads
                        * (n_src * head_dim
                            + 2 * n_src
                            + 5 * e
                            + 2 * e * head_dim
                            + n_dst * head_dim)
                    + 2 * n_dst * o
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_graph::{Batch, Block};

    fn shape(agg: AggregatorKind) -> ModelShape {
        ModelShape {
            in_dim: 8,
            hidden_dim: 4,
            num_classes: 3,
            num_layers: 1,
            aggregator: agg,
            params_gnn: 100,
            params_agg: 20,
        }
    }

    fn one_layer_batch() -> Batch {
        // 2 outputs, degrees 2 and 1; inputs {0,1,10,11,12}.
        Batch::new(vec![Block::new(vec![0, 1], &[(10, 0), (11, 0), (12, 1)])])
    }

    #[test]
    fn counts_match_hand_computation_mean() {
        let est = MemoryEstimator::new(shape(AggregatorKind::Mean));
        let e = est.estimate(&one_layer_batch());
        assert_eq!(e.parameters, 120 * 4);
        assert_eq!(e.input_features, 5 * 8 * 4);
        assert_eq!(e.labels, 2 * 4);
        assert_eq!(e.blocks, 3 * 3 * 4);
        // One layer, 2 dsts × 3 classes.
        assert_eq!(e.hidden_outputs, 2 * 3 * 4);
        // Mean runs fused: workspace only. The single layer is the last
        // layer (no activation), so 2·n_dst·d + 4·n_dst·o = 2·2·8 + 4·2·3
        // = 56 values, plus the taped parameter copies (120) and the
        // 2-value loss head.
        assert_eq!(e.aggregator_intermediate, (56 + 120 + 2) * 4);
        assert_eq!(e.gradients, 120 * 4);
        assert_eq!(e.optimizer_states, 240 * 4);
    }

    #[test]
    fn lstm_uses_equation_five() {
        let est = MemoryEstimator::new(shape(AggregatorKind::Lstm));
        let e = est.estimate(&one_layer_batch());
        // Buckets: degree 2 × 1 node + degree 1 × 1 node = 3 node-steps.
        // Eq. 5 term = 3 · d(8) · 18; plus 2 buckets · 2·n_dst·d = 64, the
        // 56-value SAGE workspace, taped params (120), and the loss head.
        assert_eq!(e.aggregator_intermediate, (3 * 8 * 18 + 64 + 56 + 122) * 4);
    }

    #[test]
    fn lstm_constant_is_tunable() {
        let est = MemoryEstimator::new(shape(AggregatorKind::Lstm)).with_lstm_constant(25);
        let e = est.estimate(&one_layer_batch());
        assert_eq!(e.aggregator_intermediate, (3 * 8 * 25 + 64 + 56 + 122) * 4);
    }

    #[test]
    fn peak_takes_max_of_transients() {
        let mut e = MemoryEstimate {
            aggregator_intermediate: 100,
            gradients: 40,
            ..MemoryEstimate::default()
        };
        assert_eq!(e.peak_bytes(), 100);
        e.gradients = 400;
        assert_eq!(e.peak_bytes(), 400);
        assert_eq!(e.total_bytes(), 500);
    }

    #[test]
    fn lstm_dominates_mean_for_same_batch() {
        let b = one_layer_batch();
        let mean = MemoryEstimator::new(shape(AggregatorKind::Mean)).estimate(&b);
        let lstm = MemoryEstimator::new(shape(AggregatorKind::Lstm)).estimate(&b);
        assert!(lstm.peak_bytes() > mean.peak_bytes());
    }

    #[test]
    #[should_panic(expected = "layers")]
    fn layer_mismatch_rejected() {
        let est = MemoryEstimator::new(ModelShape {
            num_layers: 2,
            ..shape(AggregatorKind::Mean)
        });
        est.estimate(&one_layer_batch());
    }

    #[test]
    fn half_width_dtypes_shrink_only_their_terms() {
        let b = one_layer_batch();
        let f32_est = MemoryEstimator::new(shape(AggregatorKind::Mean)).estimate(&b);
        let bf16 = MemoryEstimator::new(shape(AggregatorKind::Mean))
            .with_feature_dtype(DType::Bf16)
            .with_activation_dtype(DType::Bf16)
            .estimate(&b);
        // Item (2) halves at the feature width.
        assert_eq!(bf16.input_features, 5 * 8 * 2);
        // Item (5) halves at the activation width.
        assert_eq!(bf16.hidden_outputs, 2 * 3 * 2);
        // Item (6): the 56 per-layer workspace values halve; the taped
        // parameter copies (120) and loss head (2) stay f32.
        assert_eq!(bf16.aggregator_intermediate, 56 * 2 + 122 * 4);
        // Everything else is unchanged — f32 storage throughout.
        assert_eq!(bf16.parameters, f32_est.parameters);
        assert_eq!(bf16.labels, f32_est.labels);
        assert_eq!(bf16.blocks, f32_est.blocks);
        assert_eq!(bf16.gradients, f32_est.gradients);
        assert_eq!(bf16.optimizer_states, f32_est.optimizer_states);
        assert!(bf16.peak_bytes() < f32_est.peak_bytes());

        // f16 charges the same widths as bf16 (both 2-byte storage).
        let f16 = MemoryEstimator::new(shape(AggregatorKind::Mean))
            .with_feature_dtype(DType::F16)
            .with_activation_dtype(DType::F16)
            .estimate(&b);
        assert_eq!(f16, bf16);
    }

    #[test]
    fn dtype_defaults_are_f32() {
        let est = MemoryEstimator::new(shape(AggregatorKind::Mean));
        assert_eq!(est.feature_dtype(), DType::F32);
        assert_eq!(est.activation_dtype(), DType::F32);
    }

    #[test]
    fn smaller_micro_batches_estimate_smaller() {
        let batch = one_layer_batch();
        let est = MemoryEstimator::new(shape(AggregatorKind::Mean));
        let micro = batch.restrict(&[0]);
        let full = est.estimate(&batch);
        let part = est.estimate(&micro);
        assert!(part.peak_bytes() < full.peak_bytes());
        assert!(part.input_features < full.input_features);
    }
}

use betty_tensor::{glorot_uniform, Tensor, VarId};
use rand::Rng;

use crate::{Param, Session};

/// A standard LSTM cell with fused gate weights.
///
/// Gates are computed as `[x ‖ h] · W + b` with `W : [(X + H), 4H]` sliced
/// into input/forget/cell/output gates. Used by the LSTM neighbor
/// aggregator, which unrolls the cell over each destination's neighbor
/// sequence (Fig. 1 of the paper).
#[derive(Debug, Clone)]
pub struct LstmCell {
    weight: Param,
    bias: Param,
    input_dim: usize,
    hidden_dim: usize,
}

impl LstmCell {
    /// A cell with input width `input_dim` and state width `hidden_dim`.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            weight: Param::new(glorot_uniform(input_dim + hidden_dim, 4 * hidden_dim, rng)),
            bias: Param::new(Tensor::zeros(&[4 * hidden_dim])),
            input_dim,
            hidden_dim,
        }
    }

    /// State width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Fresh zero `(h, c)` state for a batch of `n` sequences.
    pub fn zero_state(&self, sess: &mut Session, n: usize) -> (VarId, VarId) {
        let h = sess.graph.leaf(Tensor::zeros(&[n, self.hidden_dim]));
        let c = sess.graph.leaf(Tensor::zeros(&[n, self.hidden_dim]));
        (h, c)
    }

    /// One timestep: consumes `x : [n, X]` and state `(h, c)`, returns the
    /// next `(h, c)`.
    pub fn step(&self, sess: &mut Session, x: VarId, h: VarId, c: VarId) -> (VarId, VarId) {
        let hd = self.hidden_dim;
        let w = sess.bind(&self.weight);
        let b = sess.bind(&self.bias);
        let xh = sess.graph.concat_cols(&[x, h]);
        let gates = sess.graph.matmul(xh, w);
        let gates = sess.graph.add_bias(gates, b);
        let i_raw = sess.graph.slice_cols(gates, 0, hd);
        let f_raw = sess.graph.slice_cols(gates, hd, hd);
        let g_raw = sess.graph.slice_cols(gates, 2 * hd, hd);
        let o_raw = sess.graph.slice_cols(gates, 3 * hd, hd);
        let i = sess.graph.sigmoid(i_raw);
        let f = sess.graph.sigmoid(f_raw);
        let g = sess.graph.tanh(g_raw);
        let o = sess.graph.sigmoid(o_raw);
        let fc = sess.graph.mul(f, c);
        let ig = sess.graph.mul(i, g);
        let c_next = sess.graph.add(fc, ig);
        let c_act = sess.graph.tanh(c_next);
        let h_next = sess.graph.mul(o, c_act);
        (h_next, c_next)
    }

    /// The cell's parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Visits both parameters without materializing a parameter list.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn cell(seed: u64, x: usize, h: usize) -> LstmCell {
        LstmCell::new(x, h, &mut Pcg64Mcg::seed_from_u64(seed))
    }

    #[test]
    fn step_shapes() {
        let c = cell(0, 3, 4);
        assert_eq!(c.num_params(), (3 + 4) * 16 + 16);
        let mut sess = Session::new();
        let (h0, c0) = c.zero_state(&mut sess, 5);
        let x = sess.graph.leaf(Tensor::ones(&[5, 3]));
        let (h1, c1) = c.step(&mut sess, x, h0, c0);
        assert_eq!(sess.graph.value(h1).shape(), &[5, 4]);
        assert_eq!(sess.graph.value(c1).shape(), &[5, 4]);
    }

    #[test]
    fn outputs_bounded_by_tanh_sigmoid() {
        let c = cell(1, 2, 3);
        let mut sess = Session::new();
        let (mut h, mut cc) = c.zero_state(&mut sess, 2);
        let x = sess.graph.leaf(Tensor::full(&[2, 2], 10.0));
        for _ in 0..5 {
            let (nh, nc) = c.step(&mut sess, x, h, cc);
            h = nh;
            cc = nc;
        }
        let hv = sess.graph.value(h);
        assert!(hv.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert!(hv.all_finite());
    }

    #[test]
    fn gradients_flow_through_unrolled_steps() {
        let c = cell(2, 2, 2);
        let mut sess = Session::new();
        let (mut h, mut cc) = c.zero_state(&mut sess, 1);
        let x = sess
            .graph
            .leaf(Tensor::from_vec(vec![0.5, -0.5], &[1, 2]).unwrap());
        for _ in 0..3 {
            let (nh, nc) = c.step(&mut sess, x, h, cc);
            h = nh;
            cc = nc;
        }
        let loss = sess.graph.sum(h);
        sess.graph.backward(loss);
        let w = sess.bind(&c.params()[0].clone());
        let grad = sess.graph.grad(w).expect("weight gradient");
        assert!(grad.max_abs() > 0.0);
        assert!(grad.all_finite());
        // Input gradient flows too.
        assert!(sess.graph.grad(x).unwrap().max_abs() > 0.0);
    }

    #[test]
    fn lstm_gradcheck() {
        // Finite-difference check through a 2-step unroll w.r.t. the input.
        let c = cell(3, 2, 2);
        let input = betty_tensor::randn(&[2, 2], &mut Pcg64Mcg::seed_from_u64(9));
        let res = betty_tensor::check::check_gradient(&input, |g, x| {
            let mut sess = Session::from_graph(std::mem::take(g));
            let (h0, c0) = c.zero_state(&mut sess, 2);
            let (h1, c1) = c.step(&mut sess, x, h0, c0);
            let (h2, _) = c.step(&mut sess, h1, h1, c1);
            let out = sess.graph.sum(h2);
            *g = std::mem::take(&mut sess.graph);
            out
        });
        assert!(res.passes(2e-2), "{res:?}");
    }
}

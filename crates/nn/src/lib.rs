//! GNN layers, aggregators, losses and optimizers for the Betty training
//! system.
//!
//! Built on [`betty_tensor`]'s tape autograd and [`betty_graph`]'s bipartite
//! [`betty_graph::Block`]s, this crate provides the neural substrate the
//! paper trains:
//!
//! * [`SageConv`] — GraphSAGE convolution with the four aggregators of
//!   Table 1 ([`Aggregator::Mean`], [`Aggregator::Sum`], pooling, and the
//!   memory-hungry LSTM aggregator with exact in-degree bucketing).
//! * [`GatConv`] — multi-head graph attention.
//! * [`GraphSage`] / [`Gat`] — ready-made multi-layer models implementing
//!   [`GnnModel`].
//! * [`Session`] — binds persistent [`Param`]s to tape variables for one
//!   forward/backward pass and accumulates gradients back, which is what
//!   makes micro-batch gradient accumulation (§4.2) a one-liner.
//! * [`Adam`] / [`Sgd`] — optimizers.
//!
//! # Example: one training step
//!
//! ```
//! use betty_graph::{Batch, Block};
//! use betty_nn::{Adam, AggregatorSpec, GnnModel, GraphSage, Optimizer, Session};
//! use betty_tensor::{Reduction, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_pcg::Pcg64Mcg::seed_from_u64(0);
//! let mut model = GraphSage::new(4, 8, 3, 1, AggregatorSpec::Mean, 0.0, &mut rng);
//! let batch = Batch::new(vec![Block::new(vec![0, 1], &[(2, 0), (3, 1)])]);
//! let feats = Tensor::ones(&[4, 4]);
//!
//! let mut sess = Session::new();
//! let x = sess.graph.leaf(feats);
//! let logits = model.forward(&mut sess, batch.blocks(), x, true, &mut rng);
//! let loss = sess.graph.cross_entropy(logits, &[0, 2], Reduction::Mean);
//! sess.backward(loss, &mut model);
//! Adam::new(1e-2).step(&mut model.params_mut());
//! ```

#![deny(missing_docs)]

mod aggregator;
pub mod checkpoint;
mod gat;
mod gcn;
mod gin;
mod linear;
mod lstm;
mod models;
mod optim;
mod param;
mod sage;
pub mod schedule;
mod session;

pub use aggregator::{Aggregator, AggregatorSpec};
pub use checkpoint::{
    crc32, load_checkpoint, load_train_state, save_checkpoint, save_train_state, write_atomic,
    CheckpointError, TrainState,
};
pub use gat::GatConv;
pub use gcn::GcnConv;
pub use gin::GinConv;
pub use linear::Linear;
pub use lstm::LstmCell;
pub use models::{Gat, Gcn, Gin, GnnModel, GraphSage};
pub use gat::HeadMerge;
pub use optim::{zero_grads, Adam, AdamState, Optimizer, Sgd};
pub use param::{total_params, Param};
pub use sage::SageConv;
pub use schedule::{clip_grad_norm, ConstantLr, CosineAnnealing, LrSchedule, StepDecay, Warmup};
pub use session::Session;

use betty_tensor::{glorot_uniform, Tensor, VarId};
use rand::Rng;

use crate::{Param, Session};

/// A dense affine layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
}

impl Linear {
    /// Glorot-initialized layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            weight: Param::new(glorot_uniform(in_dim, out_dim, rng)),
            bias: Param::new(Tensor::zeros(&[out_dim])),
        }
    }

    /// Applies the layer to `[n, in_dim]` variable `x`.
    pub fn forward(&self, sess: &mut Session, x: VarId) -> VarId {
        let w = sess.bind(&self.weight);
        let b = sess.bind(&self.bias);
        let xw = sess.graph.matmul(x, w);
        sess.graph.add_bias(xw, b)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.weight.value().rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weight.value().cols()
    }

    /// The layer's parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Visits both parameters without materializing a parameter list.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_tensor::Reduction;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = Pcg64Mcg::seed_from_u64(0);
        let l = Linear::new(3, 5, &mut rng);
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 5);
        assert_eq!(l.num_params(), 20);
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::ones(&[2, 3]));
        let y = l.forward(&mut sess, x);
        assert_eq!(sess.graph.value(y).shape(), &[2, 5]);
    }

    #[test]
    fn gradient_flows_to_both_params() {
        let mut rng = Pcg64Mcg::seed_from_u64(1);
        let l = Linear::new(2, 2, &mut rng);
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::ones(&[4, 2]));
        let y = l.forward(&mut sess, x);
        let loss = sess.graph.cross_entropy(y, &[0, 1, 0, 1], Reduction::Mean);
        sess.graph.backward(loss);
        for p in l.params() {
            let var = sess.bind(p);
            let g = sess.graph.grad(var).expect("param gradient exists");
            assert!(g.max_abs() > 0.0, "zero gradient for a used param");
        }
    }
}

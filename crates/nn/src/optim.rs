use betty_tensor::{kernels, Tensor};

use crate::Param;

/// A first-order optimizer over a parameter list.
///
/// Optimizers are stateful (Adam keeps moments keyed by [`Param::id`]);
/// call [`Optimizer::step`] after gradients have been accumulated and
/// [`zero_grads`] before the next batch.
pub trait Optimizer {
    /// Applies one update using each parameter's accumulated gradient.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Scalar count of optimizer state values per model value (0 for SGD,
    /// 2 for Adam) — what the memory estimator's item (8) charges.
    fn state_values_per_param(&self) -> usize;

    /// Updates the learning rate (used by [`crate::schedule`] schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    fn set_lr(&mut self, lr: f32);
}

/// Clears the accumulated gradient of every parameter.
pub fn zero_grads(params: &mut [&mut Param]) {
    for p in params.iter_mut() {
        p.zero_grad();
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let grad = p.grad().clone();
            let value = p.value_mut();
            let vd = value.data_mut();
            for (v, g) in vd.iter_mut().zip(grad.data()) {
                *v -= self.lr * g;
            }
        }
    }

    fn state_values_per_param(&self) -> usize {
        0
    }

    fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    moments: std::collections::HashMap<u64, (Tensor, Tensor)>,
}

/// A process-independent snapshot of Adam's mutable state.
///
/// [`Adam`] keys its moments by [`Param::id`], which is a process-global
/// counter — ids differ between the run that saved a checkpoint and the
/// run that loads it. `AdamState` therefore stores the moments
/// *positionally*, in the parameter-list order the caller passed to
/// [`Adam::export_state`]; [`Adam::import_state`] re-keys them under the
/// loading process's ids. Entries are `None` for parameters the optimizer
/// has never stepped. The learning rate is intentionally excluded: it is
/// configuration (possibly schedule-driven), not progress.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Number of optimizer steps taken (drives bias correction).
    pub t: i32,
    /// Per-parameter first and second moments in parameter-list order.
    pub moments: Vec<Option<(Tensor, Tensor)>>,
}

impl Adam {
    /// Adam with learning rate `lr` and the standard β/ε defaults.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: std::collections::HashMap::new(),
        }
    }

    /// Snapshots the step counter and the moments of `params`, positionally.
    pub fn export_state(&self, params: &[&Param]) -> AdamState {
        AdamState {
            t: self.t,
            moments: params
                .iter()
                .map(|p| self.moments.get(&p.id()).cloned())
                .collect(),
        }
    }

    /// Restores a snapshot taken by [`Adam::export_state`], re-keying each
    /// moment pair under the current process's [`Param::id`]s.
    ///
    /// # Errors
    ///
    /// Returns a message if the entry count or any moment shape does not
    /// match `params` (the optimizer is left unchanged).
    pub fn import_state(&mut self, params: &[&Param], state: &AdamState) -> Result<(), String> {
        if state.moments.len() != params.len() {
            return Err(format!(
                "optimizer state has {} entries, model has {} parameters",
                state.moments.len(),
                params.len()
            ));
        }
        for (i, (p, entry)) in params.iter().zip(&state.moments).enumerate() {
            if let Some((m, v)) = entry {
                if m.shape() != p.value().shape() || v.shape() != p.value().shape() {
                    return Err(format!(
                        "optimizer moment {i}: shape {:?}/{:?} != parameter shape {:?}",
                        m.shape(),
                        v.shape(),
                        p.value().shape()
                    ));
                }
            }
        }
        self.t = state.t;
        self.moments.clear();
        for (p, entry) in params.iter().zip(&state.moments) {
            if let Some(pair) = entry {
                self.moments.insert(p.id(), pair.clone());
            }
        }
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let coeffs = kernels::AdamCoeffs {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            bias1: 1.0 - self.beta1.powi(self.t),
            bias2: 1.0 - self.beta2.powi(self.t),
        };
        for p in params.iter_mut() {
            let (m, v) = self
                .moments
                .entry(p.id())
                .or_insert_with(|| (Tensor::zeros(p.value().shape()), Tensor::zeros(p.value().shape())));
            let grad = p.grad().clone();
            kernels::adam_step(
                p.value_mut().data_mut(),
                grad.data(),
                m.data_mut(),
                v.data_mut(),
                coeffs,
            );
        }
    }

    fn state_values_per_param(&self) -> usize {
        2
    }

    fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(opt: &mut dyn Optimizer, p: &mut Param) {
        // loss = x², grad = 2x.
        let grad = betty_tensor::kernels::scale(p.value(), 2.0);
        p.zero_grad();
        p.accumulate_grad(&grad);
        opt.step(&mut [p]);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = Param::new(Tensor::from_slice(&[10.0, -10.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            quadratic_step(&mut opt, &mut p);
        }
        assert!(p.value().max_abs() < 0.01, "{:?}", p.value());
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut p = Param::new(Tensor::from_slice(&[5.0, -3.0]));
        let mut opt = Adam::new(0.3);
        for _ in 0..200 {
            quadratic_step(&mut opt, &mut p);
        }
        assert!(p.value().max_abs() < 0.05, "{:?}", p.value());
    }

    #[test]
    fn adam_state_is_per_param() {
        let mut a = Param::new(Tensor::from_slice(&[1.0]));
        let mut b = Param::new(Tensor::from_slice(&[1.0]));
        let mut opt = Adam::new(0.1);
        a.accumulate_grad(&Tensor::from_slice(&[1.0]));
        b.accumulate_grad(&Tensor::from_slice(&[-1.0]));
        opt.step(&mut [&mut a, &mut b]);
        assert!(a.value().at(0) < 1.0);
        assert!(b.value().at(0) > 1.0);
        assert_eq!(opt.state_values_per_param(), 2);
    }

    #[test]
    fn zero_grads_clears_all() {
        let mut a = Param::new(Tensor::from_slice(&[1.0]));
        let mut b = Param::new(Tensor::from_slice(&[2.0]));
        a.accumulate_grad(&Tensor::from_slice(&[3.0]));
        b.accumulate_grad(&Tensor::from_slice(&[4.0]));
        zero_grads(&mut [&mut a, &mut b]);
        assert_eq!(a.grad().max_abs(), 0.0);
        assert_eq!(b.grad().max_abs(), 0.0);
    }

    #[test]
    fn adam_state_roundtrips_across_fresh_params() {
        // Train one Adam for a few steps, export, import into a fresh
        // optimizer over *different* Param ids, and check the next update
        // is bit-identical — the cross-process resume scenario.
        let mut a = Param::new(Tensor::from_slice(&[5.0, -3.0]));
        let mut opt = Adam::new(0.3);
        for _ in 0..5 {
            quadratic_step(&mut opt, &mut a);
        }
        let state = opt.export_state(&[&a]);
        assert_eq!(state.t, 5);

        // "Fresh process": a new Param (new id) holding the same values.
        let mut b = Param::new(a.value().clone());
        let mut opt2 = Adam::new(0.3);
        opt2.import_state(&[&b], &state).unwrap();
        quadratic_step(&mut opt, &mut a);
        quadratic_step(&mut opt2, &mut b);
        assert_eq!(a.value().data(), b.value().data());
    }

    #[test]
    fn adam_import_rejects_mismatches() {
        let p = Param::new(Tensor::from_slice(&[1.0, 2.0]));
        let mut opt = Adam::new(0.1);
        let too_few = AdamState { t: 1, moments: vec![] };
        assert!(opt.import_state(&[&p], &too_few).is_err());
        let bad_shape = AdamState {
            t: 1,
            moments: vec![Some((Tensor::zeros(&[3]), Tensor::zeros(&[3])))],
        };
        assert!(opt.import_state(&[&p], &bad_shape).is_err());
        // Unstepped parameters export as None and import cleanly.
        let none_state = AdamState { t: 0, moments: vec![None] };
        opt.import_state(&[&p], &none_state).unwrap();
        assert_eq!(opt.export_state(&[&p]), none_state);
    }

    #[test]
    fn set_lr_changes_step_size() {
        let mut p = Param::new(Tensor::from_slice(&[1.0]));
        p.accumulate_grad(&Tensor::from_slice(&[1.0]));
        let mut opt = Sgd::new(0.1);
        opt.set_lr(0.5);
        opt.step(&mut [&mut p]);
        assert!((p.value().at(0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn sgd_matches_hand_update() {
        let mut p = Param::new(Tensor::from_slice(&[1.0]));
        p.accumulate_grad(&Tensor::from_slice(&[0.5]));
        Sgd::new(0.2).step(&mut [&mut p]);
        assert!((p.value().at(0) - 0.9).abs() < 1e-7);
    }
}

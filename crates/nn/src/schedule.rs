//! Learning-rate schedules and gradient utilities.
//!
//! Convergence experiments (Figs. 4 & 13, Table 5) train with a fixed
//! learning rate like the paper; these utilities cover the standard knobs
//! a practitioner reaches for on harder runs.

use crate::Param;

/// A learning-rate schedule: maps an epoch index to a multiplier of the
/// base learning rate.
pub trait LrSchedule {
    /// Multiplier applied to the base learning rate at `epoch` (0-based).
    fn factor(&self, epoch: usize) -> f32;

    /// Effective learning rate at `epoch`.
    fn lr_at(&self, base_lr: f32, epoch: usize) -> f32 {
        base_lr * self.factor(epoch)
    }
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstantLr;

impl LrSchedule for ConstantLr {
    fn factor(&self, _epoch: usize) -> f32 {
        1.0
    }
}

/// Step decay: multiply by `gamma` every `step_epochs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Epochs between decays.
    pub step_epochs: usize,
    /// Per-step multiplier (e.g. 0.5 halves the rate).
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi((epoch / self.step_epochs.max(1)) as i32)
    }
}

/// Cosine annealing from 1.0 down to `min_factor` over `total_epochs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineAnnealing {
    /// Epoch count of the full schedule.
    pub total_epochs: usize,
    /// Floor multiplier at the end of the schedule.
    pub min_factor: f32,
}

impl LrSchedule for CosineAnnealing {
    fn factor(&self, epoch: usize) -> f32 {
        let t = (epoch as f32 / self.total_epochs.max(1) as f32).min(1.0);
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_factor + (1.0 - self.min_factor) * cos
    }
}

/// Linear warmup wrapped around another schedule: ramps 0 → 1 over
/// `warmup_epochs`, then defers to `inner` (with the epoch offset removed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Warmup<S> {
    /// Ramp length in epochs.
    pub warmup_epochs: usize,
    /// Schedule to follow after the ramp.
    pub inner: S,
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn factor(&self, epoch: usize) -> f32 {
        if epoch < self.warmup_epochs {
            (epoch + 1) as f32 / self.warmup_epochs as f32
        } else {
            self.inner.factor(epoch - self.warmup_epochs)
        }
    }
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
///
/// Returns the pre-clipping norm.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total_sq: f32 = params
        .iter()
        .map(|p| p.grad().data().iter().map(|g| g * g).sum::<f32>())
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.scale_grad(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_tensor::Tensor;

    #[test]
    fn constant_is_one() {
        assert_eq!(ConstantLr.factor(0), 1.0);
        assert_eq!(ConstantLr.lr_at(0.01, 99), 0.01);
    }

    #[test]
    fn step_decay_halves() {
        let s = StepDecay {
            step_epochs: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_is_monotone_to_floor() {
        let s = CosineAnnealing {
            total_epochs: 20,
            min_factor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        let mut prev = 2.0f32;
        for e in 0..=20 {
            let f = s.factor(e);
            assert!(f <= prev + 1e-6, "not monotone at {e}");
            prev = f;
        }
        assert!((s.factor(20) - 0.1).abs() < 1e-6);
        assert!((s.factor(100) - 0.1).abs() < 1e-6, "clamped past the end");
    }

    #[test]
    fn warmup_ramps_then_defers() {
        let s = Warmup {
            warmup_epochs: 4,
            inner: ConstantLr,
        };
        assert!((s.factor(0) - 0.25).abs() < 1e-6);
        assert!((s.factor(3) - 1.0).abs() < 1e-6);
        assert_eq!(s.factor(10), 1.0);
    }

    #[test]
    fn clip_rescales_only_when_needed() {
        let mut a = Param::new(Tensor::zeros(&[2]));
        a.accumulate_grad(&Tensor::from_slice(&[3.0, 4.0])); // norm 5
        let norm = clip_grad_norm(&mut [&mut a], 2.5);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((a.grad().norm() - 2.5).abs() < 1e-5);
        // Already under the cap: untouched.
        let norm2 = clip_grad_norm(&mut [&mut a], 10.0);
        assert!((norm2 - 2.5).abs() < 1e-5);
        assert!((a.grad().norm() - 2.5).abs() < 1e-5);
    }
}

//! Durable, checksummed model/session checkpoints (format v2).
//!
//! The v2 format supersedes the positional params-only `BTYCKPT1` layout:
//! a checkpoint is now a sequence of independently CRC-checked *sections*,
//! written atomically (tmp file + fsync + rename), so a crash mid-write
//! can never leave a torn file behind and any corruption — truncation or
//! bit flips anywhere in the file — is rejected deterministically at load
//! time instead of silently restoring garbage parameters.
//!
//! Little-endian binary layout:
//!
//! ```text
//! magic "BTYCKPT2" | u32 section count | sections…
//! section: [u8;4] tag | u32 payload len | payload | u32 crc32(tag+len+payload)
//! ```
//!
//! Sections appear in a fixed canonical order (duplicates and unknown tags
//! are rejected) and the file must end exactly after the last section:
//!
//! | tag    | payload |
//! |--------|---------|
//! | `PRMS` | u32 count; per param: u32 ndim, u32 dims…, f32 data… |
//! | `ADAM` | u64 step count t; u32 count; per param: u8 present, then f32 m…, f32 v… (shapes from `PRMS`) |
//! | `RNGS` | u32 count; per RNG: u128 raw state as two u64 (lo, hi) |
//! | `CTRS` | u32 count; u64 each (epoch/step counters, meaning assigned by the caller) |
//! | `FLTS` | u32 count; f64 bits each (scalar progress such as best validation accuracy) |
//! | `HIST` | u32 count; f64 bits each (per-epoch loss history) |
//! | `CFGF` | u64 config fingerprint |
//!
//! A model-only checkpoint (the CLI's `--checkpoint` / `eval` path) is a
//! v2 file containing just `PRMS`; a training-session checkpoint (the
//! `--checkpoint-dir` / `--resume` path) carries every section. Moments in
//! `ADAM` are stored positionally because [`Param::id`]s are process-local
//! — see [`AdamState`].
//!
//! [`Param::id`]: crate::Param::id

use std::fs;
use std::io;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use betty_tensor::Tensor;

use crate::optim::AdamState;
use crate::GnnModel;

const MAGIC: &[u8; 8] = b"BTYCKPT2";

const TAG_PARAMS: &[u8; 4] = b"PRMS";
const TAG_ADAM: &[u8; 4] = b"ADAM";
const TAG_RNGS: &[u8; 4] = b"RNGS";
const TAG_COUNTERS: &[u8; 4] = b"CTRS";
const TAG_FLOATS: &[u8; 4] = b"FLTS";
const TAG_HISTORY: &[u8; 4] = b"HIST";
const TAG_FINGERPRINT: &[u8; 4] = b"CFGF";

/// Canonical section order; the loader requires strictly increasing ranks,
/// which rejects both duplicates and shuffled sections.
const TAG_ORDER: [&[u8; 4]; 7] = [
    TAG_PARAMS,
    TAG_ADAM,
    TAG_RNGS,
    TAG_COUNTERS,
    TAG_FLOATS,
    TAG_HISTORY,
    TAG_FINGERPRINT,
];

/// Errors from checkpoint loading.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid checkpoint (bad magic, failed CRC,
    /// truncation, trailing bytes) or its contents do not match the
    /// target model.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(msg) => write!(f, "invalid checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — hand-rolled so betty-nn takes
// no new dependencies. Any single-bit error within a checked span is
// guaranteed to change the checksum.

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`, as used by the v2 checkpoint sections.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Atomic writes.

/// Writes `bytes` to `path` atomically: the data goes to `<path>.tmp`,
/// is fsynced, and is renamed over `path`, so a crash at any point leaves
/// either the old file or the new one — never a torn mix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(".tmp");
            path.with_file_name(n)
        }
        None => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cannot write to '{}': no file name", path.display()),
            ))
        }
    };
    {
        use io::Write;
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself: fsync the containing directory where the
    // platform supports opening directories (unix).
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// TrainState: everything a resumed session needs.

/// A complete, process-independent snapshot of a training session.
///
/// `betty-nn` defines only the *container*; the meaning of each `rngs` /
/// `counters` / `floats` slot is assigned by the caller (the core crate's
/// durable-session module) via named indices. Empty vectors (and `None`
/// options) simply omit the corresponding section, which is how a
/// model-only checkpoint is represented.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainState {
    /// Parameter values in [`GnnModel::params`] order.
    pub params: Vec<Tensor>,
    /// Optimizer state (moments positional, matching `params`).
    pub adam: Option<AdamState>,
    /// Raw `Pcg64Mcg` states (trainer dropout RNG, sampler RNG, …).
    pub rngs: Vec<u128>,
    /// Monotone progress counters (next epoch, global step, …).
    pub counters: Vec<u64>,
    /// Scalar progress values (best validation accuracy, …).
    pub floats: Vec<f64>,
    /// Per-epoch training-loss history up to the checkpoint.
    pub history: Vec<f64>,
    /// Fingerprint of the experiment configuration that produced this
    /// state; resuming under a different configuration is refused.
    pub fingerprint: Option<u64>,
}

impl TrainState {
    /// A model-only snapshot (parameters, nothing else).
    pub fn from_model(model: &dyn GnnModel) -> Self {
        TrainState {
            params: model.params().iter().map(|p| p.value().clone()).collect(),
            ..TrainState::default()
        }
    }

    /// Restores the parameter values into `model` and zeroes its gradients.
    ///
    /// The model is left unchanged if any count or shape mismatches.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Format`] naming the first mismatched parameter.
    pub fn apply_params(&self, model: &mut dyn GnnModel) -> Result<(), CheckpointError> {
        let expected = model.params().len();
        if self.params.len() != expected {
            return Err(CheckpointError::Format(format!(
                "checkpoint has {} parameters, model has {expected}",
                self.params.len()
            )));
        }
        for (i, (value, p)) in self.params.iter().zip(model.params()).enumerate() {
            if value.shape() != p.value().shape() {
                return Err(CheckpointError::Format(format!(
                    "parameter {i}: checkpoint shape {:?} != model shape {:?}",
                    value.shape(),
                    p.value().shape()
                )));
            }
        }
        for (param, value) in model.params_mut().into_iter().zip(&self.params) {
            *param.value_mut() = value.clone();
            param.zero_grad();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Encoding.

fn push_section(out: &mut BytesMut, tag: &[u8; 4], payload: &[u8]) {
    let mut span = Vec::with_capacity(8 + payload.len());
    span.extend_from_slice(tag);
    span.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    span.extend_from_slice(payload);
    let crc = crc32(&span);
    out.put_slice(&span);
    out.put_u32_le(crc);
}

fn encode_state(state: &TrainState) -> BytesMut {
    let mut sections: Vec<(&[u8; 4], Vec<u8>)> = Vec::new();

    let mut prms = BytesMut::new();
    prms.put_u32_le(state.params.len() as u32);
    for value in &state.params {
        prms.put_u32_le(value.ndim() as u32);
        for &d in value.shape() {
            prms.put_u32_le(d as u32);
        }
        for &x in value.data() {
            prms.put_f32_le(x);
        }
    }
    sections.push((TAG_PARAMS, prms.to_vec()));

    if let Some(adam) = &state.adam {
        let mut buf = BytesMut::new();
        buf.put_u64_le(adam.t as u64);
        buf.put_u32_le(adam.moments.len() as u32);
        for entry in &adam.moments {
            match entry {
                None => buf.put_u8(0),
                Some((m, v)) => {
                    buf.put_u8(1);
                    for &x in m.data() {
                        buf.put_f32_le(x);
                    }
                    for &x in v.data() {
                        buf.put_f32_le(x);
                    }
                }
            }
        }
        sections.push((TAG_ADAM, buf.to_vec()));
    }

    if !state.rngs.is_empty() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(state.rngs.len() as u32);
        for &s in &state.rngs {
            buf.put_u64_le(s as u64);
            buf.put_u64_le((s >> 64) as u64);
        }
        sections.push((TAG_RNGS, buf.to_vec()));
    }

    if !state.counters.is_empty() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(state.counters.len() as u32);
        for &c in &state.counters {
            buf.put_u64_le(c);
        }
        sections.push((TAG_COUNTERS, buf.to_vec()));
    }

    if !state.floats.is_empty() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(state.floats.len() as u32);
        for &x in &state.floats {
            buf.put_u64_le(x.to_bits());
        }
        sections.push((TAG_FLOATS, buf.to_vec()));
    }

    if !state.history.is_empty() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(state.history.len() as u32);
        for &x in &state.history {
            buf.put_u64_le(x.to_bits());
        }
        sections.push((TAG_HISTORY, buf.to_vec()));
    }

    if let Some(fp) = state.fingerprint {
        let mut buf = BytesMut::new();
        buf.put_u64_le(fp);
        sections.push((TAG_FINGERPRINT, buf.to_vec()));
    }

    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u32_le(sections.len() as u32);
    for (tag, payload) in &sections {
        push_section(&mut out, tag, payload);
    }
    out
}

/// Atomically writes a full session snapshot to `path` in format v2.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn save_train_state(state: &TrainState, path: impl AsRef<Path>) -> io::Result<()> {
    write_atomic(path.as_ref(), &encode_state(state))
}

// ---------------------------------------------------------------------------
// Decoding.

struct Reader {
    buf: Bytes,
}

impl Reader {
    fn need(&self, bytes: usize, what: &str) -> Result<(), CheckpointError> {
        if self.buf.remaining() < bytes {
            return Err(CheckpointError::Format(format!("truncated at {what}")));
        }
        Ok(())
    }

    fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        self.need(8, what)?;
        Ok(self.buf.get_u64_le())
    }

    fn f32(&mut self, what: &str) -> Result<f32, CheckpointError> {
        self.need(4, what)?;
        Ok(self.buf.get_f32_le())
    }
}

fn decode_params(r: &mut Reader) -> Result<Vec<Tensor>, CheckpointError> {
    let count = r.u32("param count")? as usize;
    let mut params = Vec::new();
    for i in 0..count {
        let ndim = r.u32("ndim")? as usize;
        if ndim > 8 {
            return Err(CheckpointError::Format(format!(
                "parameter {i}: implausible rank {ndim}"
            )));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(r.u32("shape")? as usize);
        }
        let len: usize = shape.iter().product();
        r.need(len * 4, "tensor data")?;
        let data: Vec<f32> = (0..len).map(|_| r.buf.get_f32_le()).collect();
        let tensor = Tensor::from_vec(data, &shape)
            .map_err(|e| CheckpointError::Format(format!("parameter {i}: {e}")))?;
        params.push(tensor);
    }
    Ok(params)
}

fn decode_adam(r: &mut Reader, params: &[Tensor]) -> Result<AdamState, CheckpointError> {
    let t = r.u64("adam t")?;
    if t > i32::MAX as u64 {
        return Err(CheckpointError::Format(format!("implausible adam step count {t}")));
    }
    let count = r.u32("adam moment count")? as usize;
    if count != params.len() {
        return Err(CheckpointError::Format(format!(
            "optimizer state has {count} entries, checkpoint has {} parameters",
            params.len()
        )));
    }
    let mut moments = Vec::with_capacity(count);
    for (i, p) in params.iter().enumerate() {
        match r.u8("moment presence")? {
            0 => moments.push(None),
            1 => {
                let len = p.len();
                let mut read = |what| -> Result<Tensor, CheckpointError> {
                    let mut data = Vec::with_capacity(len);
                    for _ in 0..len {
                        data.push(r.f32(what)?);
                    }
                    Tensor::from_vec(data, p.shape())
                        .map_err(|e| CheckpointError::Format(format!("moment {i}: {e}")))
                };
                let m = read("adam m")?;
                let v = read("adam v")?;
                moments.push(Some((m, v)));
            }
            other => {
                return Err(CheckpointError::Format(format!(
                    "moment {i}: bad presence byte {other}"
                )))
            }
        }
    }
    Ok(AdamState { t: t as i32, moments })
}

fn decode_state(bytes: &[u8]) -> Result<TrainState, CheckpointError> {
    let mut r = Reader { buf: Bytes::from(bytes.to_vec()) };
    r.need(MAGIC.len(), "magic")?;
    if &r.buf.split_to(MAGIC.len())[..] != MAGIC {
        return Err(CheckpointError::Format(
            "bad magic (not a v2 checkpoint)".into(),
        ));
    }
    let section_count = r.u32("section count")? as usize;
    if section_count > TAG_ORDER.len() {
        return Err(CheckpointError::Format(format!(
            "implausible section count {section_count}"
        )));
    }

    let mut state = TrainState::default();
    let mut saw_params = false;
    let mut last_rank: Option<usize> = None;
    for _ in 0..section_count {
        r.need(8, "section header")?;
        let mut tag = [0u8; 4];
        tag.copy_from_slice(&r.buf.split_to(4)[..]);
        let len = r.buf.get_u32_le() as usize;
        r.need(len + 4, "section payload")?;
        let payload = r.buf.split_to(len);
        let stored_crc = r.buf.get_u32_le();

        let mut span = Vec::with_capacity(8 + len);
        span.extend_from_slice(&tag);
        span.extend_from_slice(&(len as u32).to_le_bytes());
        span.extend_from_slice(&payload);
        if crc32(&span) != stored_crc {
            return Err(CheckpointError::Format(format!(
                "crc mismatch in section {:?}",
                String::from_utf8_lossy(&tag)
            )));
        }

        let rank = TAG_ORDER
            .iter()
            .position(|t| **t == tag)
            .ok_or_else(|| {
                CheckpointError::Format(format!(
                    "unknown section tag {:?}",
                    String::from_utf8_lossy(&tag)
                ))
            })?;
        if let Some(prev) = last_rank {
            if rank <= prev {
                return Err(CheckpointError::Format(format!(
                    "section {:?} out of order or duplicated",
                    String::from_utf8_lossy(&tag)
                )));
            }
        }
        last_rank = Some(rank);

        let mut pr = Reader { buf: payload };
        match &tag {
            t if t == TAG_PARAMS => {
                state.params = decode_params(&mut pr)?;
                saw_params = true;
            }
            t if t == TAG_ADAM => state.adam = Some(decode_adam(&mut pr, &state.params)?),
            t if t == TAG_RNGS => {
                let count = pr.u32("rng count")? as usize;
                for _ in 0..count {
                    let lo = pr.u64("rng state")?;
                    let hi = pr.u64("rng state")?;
                    state.rngs.push((lo as u128) | ((hi as u128) << 64));
                }
            }
            t if t == TAG_COUNTERS => {
                let count = pr.u32("counter count")? as usize;
                for _ in 0..count {
                    state.counters.push(pr.u64("counter")?);
                }
            }
            t if t == TAG_FLOATS => {
                let count = pr.u32("float count")? as usize;
                for _ in 0..count {
                    state.floats.push(f64::from_bits(pr.u64("float")?));
                }
            }
            t if t == TAG_HISTORY => {
                let count = pr.u32("history count")? as usize;
                for _ in 0..count {
                    state.history.push(f64::from_bits(pr.u64("loss")?));
                }
            }
            t if t == TAG_FINGERPRINT => state.fingerprint = Some(pr.u64("fingerprint")?),
            _ => unreachable!("tag validated against TAG_ORDER"),
        }
        if pr.buf.remaining() != 0 {
            return Err(CheckpointError::Format(format!(
                "section {:?} has {} trailing bytes",
                String::from_utf8_lossy(&tag),
                pr.buf.remaining()
            )));
        }
    }
    if r.buf.remaining() != 0 {
        return Err(CheckpointError::Format(format!(
            "{} trailing bytes after last section",
            r.buf.remaining()
        )));
    }
    if !saw_params {
        return Err(CheckpointError::Format("missing PRMS section".into()));
    }
    Ok(state)
}

/// Reads and validates a v2 checkpoint from `path`.
///
/// Every section's CRC is verified and the file must parse exactly to its
/// end; a truncated, bit-flipped, or trailing-garbage file is always
/// rejected with [`CheckpointError::Format`].
///
/// # Errors
///
/// [`CheckpointError::Io`] on filesystem problems, otherwise `Format`.
pub fn load_train_state(path: impl AsRef<Path>) -> Result<TrainState, CheckpointError> {
    let bytes = fs::read(path)?;
    decode_state(&bytes)
}

/// Writes a model-only checkpoint (a v2 file with just the `PRMS` section).
///
/// The write is atomic: tmp file + fsync + rename.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn save_checkpoint(model: &dyn GnnModel, path: impl AsRef<Path>) -> io::Result<()> {
    save_train_state(&TrainState::from_model(model), path)
}

/// Restores parameter values from a v2 checkpoint at `path` into `model`.
///
/// Gradients are zeroed. The model is left unchanged if the checkpoint is
/// invalid or mismatched. Extra session sections (optimizer, RNGs, …) are
/// validated but ignored.
///
/// # Errors
///
/// [`CheckpointError::Io`] on filesystem problems;
/// [`CheckpointError::Format`] when the file is malformed, corrupt, or a
/// parameter count/shape differs from the model's.
pub fn load_checkpoint(
    model: &mut dyn GnnModel,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    load_train_state(path)?.apply_params(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggregatorSpec, GraphSage, Optimizer};
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn model(seed: u64) -> GraphSage {
        GraphSage::new(4, 8, 3, 2, AggregatorSpec::Pool, 0.0, &mut Pcg64Mcg::seed_from_u64(seed))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("betty-ckpt-{name}-{}", std::process::id()))
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_restores_values() {
        let source = model(1);
        let mut target = model(2);
        assert_ne!(
            source.params()[0].value().data(),
            target.params()[0].value().data()
        );
        let path = tmp("roundtrip");
        save_checkpoint(&source, &path).unwrap();
        load_checkpoint(&mut target, &path).unwrap();
        let _ = std::fs::remove_file(&path);
        for (a, b) in source.params().iter().zip(target.params()) {
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn full_session_state_roundtrips() {
        let mut m = model(3);
        let mut opt = crate::Adam::new(0.01);
        // Take a couple of steps so moments exist.
        for p in m.params_mut().iter_mut() {
            p.accumulate_grad(&Tensor::ones(p.value().shape()));
        }
        opt.step(&mut m.params_mut());
        let state = TrainState {
            params: m.params().iter().map(|p| p.value().clone()).collect(),
            adam: Some(opt.export_state(&m.params())),
            rngs: vec![u128::MAX - 2, 42],
            counters: vec![7, 1234, 3],
            floats: vec![0.875, -1.5e-9],
            history: vec![2.5, 1.25, 0.625],
            fingerprint: Some(0xDEAD_BEEF_CAFE_F00D),
        };
        let path = tmp("session");
        save_train_state(&state, &path).unwrap();
        let loaded = load_train_state(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, state);
    }

    #[test]
    fn shape_mismatch_rejected_and_model_untouched() {
        let source = model(1);
        let mut other = GraphSage::new(
            5, // different input width
            8,
            3,
            2,
            AggregatorSpec::Pool,
            0.0,
            &mut Pcg64Mcg::seed_from_u64(3),
        );
        let before: Vec<_> = other.params().iter().map(|p| p.value().clone()).collect();
        let path = tmp("mismatch");
        save_checkpoint(&source, &path).unwrap();
        let err = load_checkpoint(&mut other, &path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        for (p, b) in other.params().iter().zip(&before) {
            assert_eq!(p.value(), b, "model mutated on failed load");
        }
    }

    #[test]
    fn garbage_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"junk").unwrap();
        let mut m = model(1);
        let err = load_checkpoint(&mut m, &path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn v1_checkpoints_are_rejected() {
        let path = tmp("v1");
        std::fs::write(&path, b"BTYCKPT1\x00\x00\x00\x00").unwrap();
        let err = load_train_state(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let state = TrainState {
            params: vec![Tensor::from_slice(&[1.0, 2.0, 3.0])],
            adam: Some(AdamState { t: 2, moments: vec![None] }),
            rngs: vec![99],
            counters: vec![1],
            floats: vec![0.5],
            history: vec![1.0],
            fingerprint: Some(17),
        };
        let bytes = encode_state(&state).to_vec();
        assert!(decode_state(&bytes).is_ok());
        for cut in 0..bytes.len() {
            let err = decode_state(&bytes[..cut]).expect_err("truncated load succeeded");
            assert!(matches!(err, CheckpointError::Format(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let state = TrainState {
            params: vec![Tensor::from_slice(&[1.0, -2.0])],
            adam: Some(AdamState {
                t: 1,
                moments: vec![Some((Tensor::zeros(&[2]), Tensor::zeros(&[2])))],
            }),
            rngs: vec![7, 8],
            counters: vec![9],
            floats: vec![3.5],
            history: vec![0.25],
            fingerprint: Some(5),
        };
        let bytes = encode_state(&state).to_vec();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                match decode_state(&corrupt) {
                    Err(CheckpointError::Format(_)) => {}
                    Ok(loaded) => panic!(
                        "bit flip at byte {byte} bit {bit} loaded: {loaded:?}"
                    ),
                    Err(e) => panic!("bit flip at byte {byte} bit {bit}: unexpected {e}"),
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let path = tmp("trailing");
        let state = TrainState::from_model(&model(1));
        let mut bytes = encode_state(&state).to_vec();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        let err = load_train_state(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
    }

    #[test]
    fn atomic_write_leaves_no_tmp_file() {
        let path = tmp("atomic");
        save_checkpoint(&model(1), &path).unwrap();
        let tmp_path = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert!(path.exists());
        assert!(!tmp_path.exists(), "tmp file left behind");
        let _ = std::fs::remove_file(&path);
    }
}

//! Model checkpointing: save/restore the parameter values of a
//! [`GnnModel`].
//!
//! The format is positional — parameters are written in
//! [`GnnModel::params`] order with their shapes — so a checkpoint can only
//! be restored into a model of the identical architecture (shapes are
//! verified). Little-endian binary:
//!
//! ```text
//! magic "BTYCKPT1" | u32 param count | per param: u32 ndim, u32 dims…,
//! f32 data…
//! ```

use std::fs;
use std::io;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use betty_tensor::Tensor;

use crate::GnnModel;

const MAGIC: &[u8; 8] = b"BTYCKPT1";

/// Errors from [`load_checkpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid checkpoint, or its parameter shapes do not
    /// match the target model.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(msg) => write!(f, "invalid checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes the model's parameter values to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn save_checkpoint(model: &dyn GnnModel, path: impl AsRef<Path>) -> io::Result<()> {
    let params = model.params();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(params.len() as u32);
    for p in params {
        let value = p.value();
        buf.put_u32_le(value.ndim() as u32);
        for &d in value.shape() {
            buf.put_u32_le(d as u32);
        }
        for &x in value.data() {
            buf.put_f32_le(x);
        }
    }
    fs::write(path, &buf)
}

/// Restores parameter values from `path` into `model`.
///
/// Gradients are zeroed. The model is left unchanged if the checkpoint is
/// invalid or mismatched.
///
/// # Errors
///
/// [`CheckpointError::Io`] on filesystem problems;
/// [`CheckpointError::Format`] when the file is malformed or a parameter
/// count/shape differs from the model's.
pub fn load_checkpoint(
    model: &mut dyn GnnModel,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let mut buf = Bytes::from(fs::read(path)?);
    let need = |buf: &Bytes, bytes: usize, what: &str| -> Result<(), CheckpointError> {
        if buf.remaining() < bytes {
            return Err(CheckpointError::Format(format!("truncated at {what}")));
        }
        Ok(())
    };
    need(&buf, MAGIC.len() + 4, "header")?;
    if &buf.split_to(MAGIC.len())[..] != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let count = buf.get_u32_le() as usize;
    let expected = model.params().len();
    if count != expected {
        return Err(CheckpointError::Format(format!(
            "checkpoint has {count} parameters, model has {expected}"
        )));
    }
    // Decode everything (validating against model shapes) before mutating.
    let shapes: Vec<Vec<usize>> = model
        .params()
        .iter()
        .map(|p| p.value().shape().to_vec())
        .collect();
    let mut values = Vec::with_capacity(count);
    for (i, expected_shape) in shapes.iter().enumerate() {
        need(&buf, 4, "ndim")?;
        let ndim = buf.get_u32_le() as usize;
        need(&buf, ndim * 4, "shape")?;
        let shape: Vec<usize> = (0..ndim).map(|_| buf.get_u32_le() as usize).collect();
        if &shape != expected_shape {
            return Err(CheckpointError::Format(format!(
                "parameter {i}: checkpoint shape {shape:?} != model shape {expected_shape:?}"
            )));
        }
        let len: usize = shape.iter().product();
        need(&buf, len * 4, "tensor data")?;
        let data: Vec<f32> = (0..len).map(|_| buf.get_f32_le()).collect();
        values.push(Tensor::from_vec(data, &shape).expect("validated shape"));
    }
    for (param, value) in model.params_mut().into_iter().zip(values) {
        *param.value_mut() = value;
        param.zero_grad();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggregatorSpec, GraphSage};
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn model(seed: u64) -> GraphSage {
        GraphSage::new(4, 8, 3, 2, AggregatorSpec::Pool, 0.0, &mut Pcg64Mcg::seed_from_u64(seed))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("betty-ckpt-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_restores_values() {
        let source = model(1);
        let mut target = model(2);
        assert_ne!(
            source.params()[0].value().data(),
            target.params()[0].value().data()
        );
        let path = tmp("roundtrip");
        save_checkpoint(&source, &path).unwrap();
        load_checkpoint(&mut target, &path).unwrap();
        let _ = std::fs::remove_file(&path);
        for (a, b) in source.params().iter().zip(target.params()) {
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn shape_mismatch_rejected_and_model_untouched() {
        let source = model(1);
        let mut other = GraphSage::new(
            5, // different input width
            8,
            3,
            2,
            AggregatorSpec::Pool,
            0.0,
            &mut Pcg64Mcg::seed_from_u64(3),
        );
        let before: Vec<_> = other.params().iter().map(|p| p.value().clone()).collect();
        let path = tmp("mismatch");
        save_checkpoint(&source, &path).unwrap();
        let err = load_checkpoint(&mut other, &path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        for (p, b) in other.params().iter().zip(&before) {
            assert_eq!(p.value(), b, "model mutated on failed load");
        }
    }

    #[test]
    fn garbage_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"junk").unwrap();
        let mut m = model(1);
        let err = load_checkpoint(&mut m, &path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, CheckpointError::Format(_)));
    }
}

use std::sync::atomic::{AtomicU64, Ordering};

use betty_tensor::Tensor;

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

/// A trainable parameter: a value tensor plus an accumulated gradient.
///
/// Parameters persist across tape lifetimes. Each forward pass binds the
/// value to a fresh tape leaf (see [`crate::Session`]); after backward, the
/// leaf's gradient is *added* to [`Param::grad`] — accumulation across
/// micro-batches is therefore the default, and an explicit
/// [`Param::zero_grad`] starts the next batch.
#[derive(Debug, Clone)]
pub struct Param {
    id: u64,
    value: Tensor,
    grad: Tensor,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self {
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad,
        }
    }

    /// Process-unique identity used by [`crate::Session`] to key bindings.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The parameter value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable access to the value (used by optimizers).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Adds `delta` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate_grad(&mut self, delta: &Tensor) {
        self.grad.add_assign(delta);
    }

    /// Scales the accumulated gradient (used to turn a sum over
    /// micro-batches into a mean over the effective batch).
    pub fn scale_grad(&mut self, factor: f32) {
        self.grad.scale_assign(factor);
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar values in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never true for real layers).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Total scalar count across a parameter list.
pub fn total_params(params: &[&Param]) -> usize {
    params.iter().map(|p| p.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Param::new(Tensor::zeros(&[2]));
        let b = Param::new(Tensor::zeros(&[2]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn grad_accumulates_and_clears() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::from_slice(&[1.0, 2.0]));
        p.accumulate_grad(&Tensor::from_slice(&[0.5, 0.5]));
        assert_eq!(p.grad().data(), &[1.5, 2.5]);
        p.scale_grad(2.0);
        assert_eq!(p.grad().data(), &[3.0, 5.0]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn clone_keeps_id() {
        // Cloning a Param (e.g. checkpointing) preserves identity.
        let p = Param::new(Tensor::zeros(&[1]));
        assert_eq!(p.clone().id(), p.id());
    }

    #[test]
    fn total_params_sums_lengths() {
        let a = Param::new(Tensor::zeros(&[2, 3]));
        let b = Param::new(Tensor::zeros(&[4]));
        assert_eq!(total_params(&[&a, &b]), 10);
    }
}

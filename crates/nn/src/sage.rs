use betty_graph::Block;
use betty_tensor::VarId;
use rand::Rng;

use crate::{Aggregator, AggregatorSpec, Linear, Param, Session};

/// One GraphSAGE convolution layer (Hamilton et al., the paper's primary
/// model).
///
/// `out = fc_self(h_dst) + fc_neigh(aggregate(h_src))` — the DGL `SAGEConv`
/// formulation. The activation is applied by the enclosing model, not here.
#[derive(Debug, Clone)]
pub struct SageConv {
    fc_self: Linear,
    fc_neigh: Linear,
    aggregator: Aggregator,
}

impl SageConv {
    /// A layer mapping `in_dim → out_dim` with the given aggregator.
    pub fn new(in_dim: usize, out_dim: usize, spec: AggregatorSpec, rng: &mut impl Rng) -> Self {
        Self {
            fc_self: Linear::new(in_dim, out_dim, rng),
            fc_neigh: Linear::new(in_dim, out_dim, rng),
            aggregator: Aggregator::new(spec, in_dim, rng),
        }
    }

    /// Applies the layer over `block` with source features
    /// `[block.num_src(), in_dim]`, producing `[block.num_dst(), out_dim]`.
    pub fn forward(&self, sess: &mut Session, block: &Block, src_feats: VarId) -> VarId {
        // Destination self-features are the first num_dst source rows
        // (the Block construction guarantees this ordering).
        let h_dst = sess.graph.slice_rows(src_feats, block.num_dst());
        let h_neigh = self.aggregator.forward(sess, block, src_feats);
        let out_self = self.fc_self.forward(sess, h_dst);
        let out_neigh = self.fc_neigh.forward(sess, h_neigh);
        sess.graph.add(out_self, out_neigh)
    }

    /// The aggregator spec in use.
    pub fn aggregator_spec(&self) -> AggregatorSpec {
        self.aggregator.spec()
    }

    /// Parameters of the two linear maps (the "GNN" parameters in the
    /// paper's memory model).
    pub fn gnn_params(&self) -> Vec<&Param> {
        let mut p = self.fc_self.params();
        p.extend(self.fc_neigh.params());
        p
    }

    /// Parameters owned by the aggregator (`NP_Agg` in Table 3).
    pub fn aggregator_params(&self) -> Vec<&Param> {
        self.aggregator.params()
    }

    /// All parameters.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.gnn_params();
        p.extend(self.aggregator.params());
        p
    }

    /// Mutable access to all parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.fc_self.params_mut();
        p.extend(self.fc_neigh.params_mut());
        p.extend(self.aggregator.params_mut());
        p
    }

    /// Visits all parameters without materializing a parameter list.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc_self.for_each_param_mut(f);
        self.fc_neigh.for_each_param_mut(f);
        self.aggregator.for_each_param_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_tensor::{Reduction, Tensor};
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn rng() -> Pcg64Mcg {
        Pcg64Mcg::seed_from_u64(21)
    }

    fn block() -> Block {
        Block::new(vec![0, 1], &[(2, 0), (3, 0), (2, 1)])
    }

    #[test]
    fn output_shape() {
        let layer = SageConv::new(3, 5, AggregatorSpec::Mean, &mut rng());
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::ones(&[4, 3]));
        let y = layer.forward(&mut sess, &block(), x);
        assert_eq!(sess.graph.value(y).shape(), &[2, 5]);
    }

    #[test]
    fn param_split_gnn_vs_aggregator() {
        let mean = SageConv::new(3, 5, AggregatorSpec::Mean, &mut rng());
        assert_eq!(mean.gnn_params().len(), 4);
        assert!(mean.aggregator_params().is_empty());
        let lstm = SageConv::new(3, 5, AggregatorSpec::Lstm, &mut rng());
        assert_eq!(lstm.aggregator_params().len(), 2);
        assert_eq!(lstm.params().len(), 6);
    }

    #[test]
    fn all_params_get_gradients() {
        for spec in [
            AggregatorSpec::Mean,
            AggregatorSpec::Sum,
            AggregatorSpec::Pool,
            AggregatorSpec::Lstm,
        ] {
            let mut layer = SageConv::new(2, 3, spec, &mut rng());
            let mut sess = Session::new();
            let x = sess.graph.leaf(betty_tensor::randn(
                &[4, 2],
                &mut Pcg64Mcg::seed_from_u64(3),
            ));
            let y = layer.forward(&mut sess, &block(), x);
            let loss = sess.graph.cross_entropy(y, &[0, 1], Reduction::Mean);
            sess.graph.backward(loss);
            for p in layer.params_mut() {
                let var = sess.bind(p);
                assert!(
                    sess.graph.grad(var).is_some(),
                    "{}: param missing grad",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn self_features_matter() {
        // Two destinations with identical neighborhoods but different self
        // features must produce different outputs.
        let b = Block::new(vec![0, 1], &[(2, 0), (2, 1)]);
        let layer = SageConv::new(2, 2, AggregatorSpec::Mean, &mut rng());
        let mut sess = Session::new();
        let x = sess.graph.leaf(
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.5, 0.5], &[3, 2]).unwrap(),
        );
        let y = layer.forward(&mut sess, &b, x);
        let v = sess.graph.value(y);
        assert_ne!(v.row(0), v.row(1));
    }
}

use std::collections::HashMap;

use betty_tensor::{Graph, VarId};

use crate::models::GnnModel;
use crate::Param;

/// One forward/backward pass: a fresh autograd tape plus the bindings from
/// persistent [`Param`]s to their tape leaves.
///
/// GNN forward passes are shaped by the sampled batch, so every
/// (micro-)batch gets its own `Session`. Binding is idempotent within a
/// session — a parameter used by several layers (or several times by an
/// unrolled LSTM) maps to a single leaf, so its gradient contributions
/// accumulate on the tape as they should.
#[derive(Debug, Default)]
pub struct Session {
    /// The underlying autograd tape; layers build their ops on it directly.
    pub graph: Graph,
    bindings: HashMap<u64, VarId>,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing tape (no bindings yet) — lets generic tape
    /// utilities such as [`betty_tensor::check::check_gradient`] drive
    /// layer code.
    pub fn from_graph(graph: Graph) -> Self {
        Self {
            graph,
            bindings: HashMap::new(),
        }
    }

    /// Consumes the session, returning the tape.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Clears the tape and bindings for the next micro-batch while keeping
    /// the tape's buffer pool warm: values and gradients from the finished
    /// step are recycled instead of freed, so rebuilding a same-shaped
    /// forward pass performs almost no heap allocation.
    pub fn reset(&mut self) {
        self.graph.reset();
        self.bindings.clear();
    }

    /// Returns the tape leaf bound to `param`, creating it on first use.
    pub fn bind(&mut self, param: &Param) -> VarId {
        if let Some(&v) = self.bindings.get(&param.id()) {
            return v;
        }
        let v = self.graph.leaf(param.value().clone());
        self.bindings.insert(param.id(), v);
        v
    }

    /// Runs backward from `loss` and adds each bound parameter's tape
    /// gradient into its persistent [`Param::grad`].
    ///
    /// Parameters that did not participate in `loss` are left untouched.
    pub fn backward(&mut self, loss: VarId, model: &mut dyn GnnModel) {
        self.graph.backward(loss);
        let Session { graph, bindings } = self;
        model.for_each_param_mut(&mut |param| {
            if let Some(&var) = bindings.get(&param.id()) {
                if let Some(grad) = graph.grad(var) {
                    param.accumulate_grad(grad);
                }
            }
        });
    }

    /// Total bytes of forward activations held by the tape — what the
    /// device simulator charges as activation memory.
    pub fn activation_bytes(&self) -> usize {
        self.graph.activation_bytes()
    }

    /// Number of parameters bound so far.
    pub fn num_bindings(&self) -> usize {
        self.bindings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_tensor::Tensor;

    #[test]
    fn bind_is_idempotent() {
        let mut s = Session::new();
        let p = Param::new(Tensor::ones(&[2]));
        let a = s.bind(&p);
        let b = s.bind(&p);
        assert_eq!(a, b);
        assert_eq!(s.num_bindings(), 1);
    }

    #[test]
    fn distinct_params_get_distinct_leaves() {
        let mut s = Session::new();
        let p = Param::new(Tensor::ones(&[2]));
        let q = Param::new(Tensor::ones(&[2]));
        assert_ne!(s.bind(&p), s.bind(&q));
    }

    #[test]
    fn reset_clears_bindings_and_recycles_tape() {
        let mut s = Session::new();
        let p = Param::new(Tensor::ones(&[2, 2]));
        s.bind(&p);
        assert_eq!(s.num_bindings(), 1);
        s.reset();
        assert_eq!(s.num_bindings(), 0);
        assert_eq!(s.activation_bytes(), 0);
        // The session stays usable after reset.
        let v = s.bind(&p);
        let w = s.graph.relu(v);
        assert_eq!(s.graph.value(w).shape(), &[2, 2]);
    }
}

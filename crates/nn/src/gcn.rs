use betty_graph::Block;
use betty_tensor::VarId;
use rand::Rng;

use crate::{Linear, Param, Session};

/// A graph convolution layer (Kipf & Welling) adapted to sampled bipartite
/// blocks.
///
/// Uses self-loop-augmented *right* normalization — every destination
/// averages itself together with its sampled neighbors:
///
/// ```text
/// h'_v = W · ( (h_v + Σ_{u→v} h_u) / (deg(v) + 1) ) + b
/// ```
///
/// (Symmetric normalization needs global degrees, which sampled blocks do
/// not carry; right normalization is the standard mini-batch adaptation.)
/// Aggregation runs on the weighted fused kernel: no `[E, d]` message
/// tensor is materialized.
#[derive(Debug, Clone)]
pub struct GcnConv {
    linear: Linear,
}

impl GcnConv {
    /// A layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            linear: Linear::new(in_dim, out_dim, rng),
        }
    }

    /// Applies the layer over `block`, producing
    /// `[block.num_dst(), out_dim]`.
    pub fn forward(&self, sess: &mut Session, block: &Block, src_feats: VarId) -> VarId {
        let n_dst = block.num_dst();
        // Edges plus one self-loop per destination, all weighted
        // 1 / (deg + 1); dst-first source ordering makes the self index
        // equal the dst index.
        let n_edges = block.num_edges();
        let mut gather = Vec::with_capacity(n_edges + n_dst);
        let mut seg = Vec::with_capacity(n_edges + n_dst);
        let mut weights = Vec::with_capacity(n_edges + n_dst);
        for d in 0..n_dst {
            let inv = 1.0 / (block.in_degree(d) + 1) as f32;
            gather.push(d);
            seg.push(d);
            weights.push(inv);
            for &s in block.in_edges(d) {
                gather.push(s as usize);
                seg.push(d);
                weights.push(inv);
            }
        }
        let agg = sess
            .graph
            .fused_neighbor_weighted_sum(src_feats, &gather, &seg, &weights, n_dst);
        self.linear.forward(sess, agg)
    }

    /// The layer's parameters.
    pub fn params(&self) -> Vec<&Param> {
        self.linear.params()
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.linear.params_mut()
    }

    /// Visits the layer's parameters without materializing a list.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.linear.for_each_param_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_tensor::{Reduction, Tensor};
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn rng() -> Pcg64Mcg {
        Pcg64Mcg::seed_from_u64(44)
    }

    fn block() -> Block {
        Block::new(vec![0, 1], &[(2, 0), (3, 0), (3, 1)])
    }

    #[test]
    fn output_shape() {
        let layer = GcnConv::new(3, 5, &mut rng());
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::ones(&[4, 3]));
        let y = layer.forward(&mut sess, &block(), x);
        assert_eq!(sess.graph.value(y).shape(), &[2, 5]);
    }

    #[test]
    fn normalization_is_convex_combination() {
        // With identical source features, the normalized aggregate equals
        // the shared feature for every destination regardless of degree.
        let layer = GcnConv::new(2, 2, &mut rng());
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::full(&[4, 2], 3.0));
        let y = layer.forward(&mut sess, &block(), x);
        let v = sess.graph.value(y);
        assert!(
            v.row(0).iter().zip(v.row(1)).all(|(a, b)| (a - b).abs() < 1e-5),
            "degree must not change a convex combination of equal inputs"
        );
    }

    #[test]
    fn isolated_destination_keeps_self_features() {
        let b = Block::new(vec![0, 1], &[(2, 0)]); // dst 1 isolated
        let layer = GcnConv::new(2, 2, &mut rng());
        let mut sess = Session::new();
        let feats =
            Tensor::from_vec(vec![0.0, 0.0, 5.0, 5.0, 1.0, 1.0], &[3, 2]).unwrap();
        let x = sess.graph.leaf(feats);
        let y = layer.forward(&mut sess, &b, x);
        // dst 1 aggregates only itself (5,5); dst 0 averages (0,0) & (1,1).
        // With a shared linear map, outputs must differ.
        let v = sess.graph.value(y);
        assert_ne!(v.row(0), v.row(1));
    }

    #[test]
    fn gradients_flow() {
        let mut layer = GcnConv::new(2, 3, &mut rng());
        let mut sess = Session::new();
        let x = sess
            .graph
            .leaf(betty_tensor::randn(&[4, 2], &mut Pcg64Mcg::seed_from_u64(5)));
        let y = layer.forward(&mut sess, &block(), x);
        let loss = sess.graph.cross_entropy(y, &[0, 1], Reduction::Mean);
        sess.graph.backward(loss);
        assert!(sess.graph.grad(x).unwrap().max_abs() > 0.0);
        for p in layer.params_mut() {
            let var = sess.bind(p);
            assert!(sess.graph.grad(var).is_some());
        }
    }

    #[test]
    fn gcn_gradcheck() {
        let b = block();
        let layer = GcnConv::new(2, 2, &mut rng());
        let input = betty_tensor::randn(&[4, 2], &mut Pcg64Mcg::seed_from_u64(6));
        let res = betty_tensor::check::check_gradient(&input, |g, x| {
            let mut sess = Session::from_graph(std::mem::take(g));
            let out = layer.forward(&mut sess, &b, x);
            let t = sess.graph.tanh(out);
            let loss = sess.graph.sum(t);
            *g = sess.into_graph();
            loss
        });
        assert!(res.passes(2e-2), "{res:?}");
    }
}

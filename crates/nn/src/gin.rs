use betty_graph::Block;
use betty_tensor::{Tensor, VarId};
use rand::Rng;

use crate::{Linear, Param, Session};

/// A Graph Isomorphism Network layer (Xu et al., "How Powerful are Graph
/// Neural Networks?" — reference [41] of the paper).
///
/// ```text
/// h'_v = MLP( (1 + ε) · h_v + Σ_{u→v} h_u )
/// ```
///
/// with a learnable `ε` and a two-layer MLP. Sum aggregation runs on the
/// fused kernel (no `[E, d]` messages).
#[derive(Debug, Clone)]
pub struct GinConv {
    eps: Param,
    fc1: Linear,
    fc2: Linear,
}

impl GinConv {
    /// A layer mapping `in_dim → out_dim` through a `hidden`-wide MLP.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            eps: Param::new(Tensor::zeros(&[1])),
            fc1: Linear::new(in_dim, hidden, rng),
            fc2: Linear::new(hidden, out_dim, rng),
        }
    }

    /// Applies the layer over `block`, producing
    /// `[block.num_dst(), out_dim]`.
    pub fn forward(&self, sess: &mut Session, block: &Block, src_feats: VarId) -> VarId {
        let edge_src: Vec<usize> = block.edge_src_locals().iter().map(|&s| s as usize).collect();
        let edge_dst: Vec<usize> = block.edge_dst_locals().iter().map(|&d| d as usize).collect();
        let n_dst = block.num_dst();

        let neigh_sum = sess
            .graph
            .fused_neighbor_sum(src_feats, &edge_src, &edge_dst, n_dst);
        // (1 + ε) · h_dst with learnable ε.
        let self_idx: Vec<usize> = (0..n_dst).collect();
        let h_dst = sess.graph.gather_rows(src_feats, &self_idx);
        let eps = sess.bind(&self.eps);
        let one = sess.graph.leaf(Tensor::from_slice(&[1.0]));
        let one_plus_eps = sess.graph.add(one, eps);
        let scaled_self = sess.graph.mul_scalar_var(h_dst, one_plus_eps);
        let combined = sess.graph.add(scaled_self, neigh_sum);

        let hidden = self.fc1.forward(sess, combined);
        let hidden = sess.graph.relu(hidden);
        self.fc2.forward(sess, hidden)
    }

    /// Current ε value.
    pub fn epsilon(&self) -> f32 {
        self.eps.value().item()
    }

    /// The layer's parameters (ε plus both MLP layers).
    pub fn params(&self) -> Vec<&Param> {
        let mut p = vec![&self.eps];
        p.extend(self.fc1.params());
        p.extend(self.fc2.params());
        p
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = vec![&mut self.eps];
        p.extend(self.fc1.params_mut());
        p.extend(self.fc2.params_mut());
        p
    }

    /// Visits the layer's parameters without materializing a list.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.eps);
        self.fc1.for_each_param_mut(f);
        self.fc2.for_each_param_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_tensor::Reduction;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn rng() -> Pcg64Mcg {
        Pcg64Mcg::seed_from_u64(55)
    }

    fn block() -> Block {
        Block::new(vec![0, 1], &[(2, 0), (3, 0), (3, 1)])
    }

    #[test]
    fn output_shape_and_param_count() {
        let layer = GinConv::new(3, 8, 5, &mut rng());
        assert_eq!(layer.params().len(), 5); // eps + 2×(W, b)
        assert_eq!(layer.epsilon(), 0.0);
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::ones(&[4, 3]));
        let y = layer.forward(&mut sess, &block(), x);
        assert_eq!(sess.graph.value(y).shape(), &[2, 5]);
    }

    #[test]
    fn epsilon_receives_gradient() {
        let mut layer = GinConv::new(2, 4, 2, &mut rng());
        let mut sess = Session::new();
        let x = sess
            .graph
            .leaf(betty_tensor::randn(&[4, 2], &mut Pcg64Mcg::seed_from_u64(1)));
        let y = layer.forward(&mut sess, &block(), x);
        let loss = sess.graph.cross_entropy(y, &[0, 1], Reduction::Mean);
        sess.graph.backward(loss);
        for (i, p) in layer.params_mut().into_iter().enumerate() {
            let var = sess.bind(p);
            assert!(sess.graph.grad(var).is_some(), "param {i} missing grad");
        }
    }

    #[test]
    fn gin_gradcheck() {
        let b = block();
        let layer = GinConv::new(2, 4, 2, &mut rng());
        let input = betty_tensor::randn(&[4, 2], &mut Pcg64Mcg::seed_from_u64(2));
        let res = betty_tensor::check::check_gradient(&input, |g, x| {
            let mut sess = Session::from_graph(std::mem::take(g));
            let out = layer.forward(&mut sess, &b, x);
            let t = sess.graph.tanh(out);
            let loss = sess.graph.sum(t);
            *g = sess.into_graph();
            loss
        });
        assert!(res.passes(3e-2), "{res:?}");
    }

    #[test]
    fn sum_aggregation_distinguishes_multisets() {
        // GIN's selling point: dst with neighbors {2, 2} differs from dst
        // with {2} (sum, not mean).
        let b = Block::new(vec![0, 1], &[(2, 0), (2, 0), (2, 1)]);
        let layer = GinConv::new(2, 4, 2, &mut rng());
        let mut sess = Session::new();
        let x = sess.graph.leaf(
            Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0], &[3, 2]).unwrap(),
        );
        let y = layer.forward(&mut sess, &b, x);
        let v = sess.graph.value(y);
        assert_ne!(v.row(0), v.row(1));
    }
}

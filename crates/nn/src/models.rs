use betty_graph::Block;
use betty_tensor::{Tensor, VarId};
use rand::{Rng, RngCore};

use crate::gat::HeadMerge;
use crate::{AggregatorSpec, GatConv, GcnConv, GinConv, Param, SageConv, Session};

/// A multi-layer GNN usable by the Betty trainer.
///
/// `forward` consumes one block per layer (input-most first — the
/// [`betty_graph::Batch`] convention) and returns per-output-node logits.
pub trait GnnModel {
    /// Runs the model over the block stack.
    ///
    /// `input_feats` is `[blocks[0].num_src(), in_dim]`; the result is
    /// `[blocks.last().num_dst(), num_classes]`. `training` enables
    /// dropout, which draws masks from `rng`.
    fn forward(
        &self,
        sess: &mut Session,
        blocks: &[Block],
        input_feats: VarId,
        training: bool,
        rng: &mut dyn RngCore,
    ) -> VarId;

    /// All trainable parameters.
    fn params(&self) -> Vec<&Param>;

    /// Mutable access to all trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Visits every trainable parameter mutably, in [`GnnModel::params_mut`]
    /// order, without materializing the parameter list — the training hot
    /// path calls this every micro-batch, so built-in models override it
    /// with an allocation-free walk.
    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.params_mut() {
            f(p);
        }
    }

    /// Number of GNN layers (= blocks consumed per forward).
    fn num_layers(&self) -> usize;

    /// Raw input feature dimension.
    fn in_dim(&self) -> usize;

    /// Hidden width.
    fn hidden_dim(&self) -> usize;

    /// Output class count.
    fn num_classes(&self) -> usize;

    /// Runs a single layer over one block (inference mode: activation
    /// applied for non-final layers, no dropout). Enables exact layer-wise
    /// full-graph inference, where layer `i` finishes on every node before
    /// layer `i + 1` starts.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= num_layers()`.
    fn forward_layer(
        &self,
        sess: &mut Session,
        layer: usize,
        block: &Block,
        src_feats: VarId,
    ) -> VarId;

    /// Scalar parameter count excluding aggregators (`NP_GNN`, Table 3).
    fn gnn_param_count(&self) -> usize;

    /// Scalar parameter count of aggregators (`NP_Agg`, Table 3).
    fn agg_param_count(&self) -> usize;

    /// Total scalar parameter count.
    fn total_param_count(&self) -> usize {
        self.gnn_param_count() + self.agg_param_count()
    }
}

fn dropout(sess: &mut Session, x: VarId, p: f32, training: bool, rng: &mut dyn RngCore) -> VarId {
    if !training || p <= 0.0 {
        return x;
    }
    let shape = sess.graph.value(x).shape().to_vec();
    let len: usize = shape.iter().product();
    let mask_data: Vec<f32> = (0..len)
        .map(|_| if rng.gen::<f32>() < p { 0.0 } else { 1.0 })
        .collect();
    let mask = Tensor::from_vec(mask_data, &shape).expect("mask shape");
    sess.graph.dropout_with_mask(x, &mask, p)
}

/// Multi-layer GraphSAGE (the paper's primary model).
#[derive(Debug, Clone)]
pub struct GraphSage {
    layers: Vec<SageConv>,
    in_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    dropout_p: f32,
}

impl GraphSage {
    /// Builds an `num_layers`-deep GraphSAGE: `in_dim → hidden…hidden →
    /// num_classes`, ReLU + dropout between layers.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        num_layers: usize,
        aggregator: AggregatorSpec,
        dropout_p: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        let mut layers = Vec::with_capacity(num_layers);
        for i in 0..num_layers {
            let li = if i == 0 { in_dim } else { hidden_dim };
            let lo = if i + 1 == num_layers { num_classes } else { hidden_dim };
            layers.push(SageConv::new(li, lo, aggregator, rng));
        }
        Self {
            layers,
            in_dim,
            hidden_dim,
            num_classes,
            dropout_p,
        }
    }

    /// The aggregator used by every layer.
    pub fn aggregator_spec(&self) -> AggregatorSpec {
        self.layers[0].aggregator_spec()
    }
}

impl GnnModel for GraphSage {
    fn forward(
        &self,
        sess: &mut Session,
        blocks: &[Block],
        input_feats: VarId,
        training: bool,
        rng: &mut dyn RngCore,
    ) -> VarId {
        assert_eq!(
            blocks.len(),
            self.layers.len(),
            "model expects {} blocks, got {}",
            self.layers.len(),
            blocks.len()
        );
        let mut h = input_feats;
        for (i, (layer, block)) in self.layers.iter().zip(blocks).enumerate() {
            h = layer.forward(sess, block, h);
            if i + 1 < self.layers.len() {
                h = sess.graph.relu(h);
                h = dropout(sess, h, self.dropout_p, training, rng);
            }
        }
        h
    }

    fn forward_layer(
        &self,
        sess: &mut Session,
        layer: usize,
        block: &Block,
        src_feats: VarId,
    ) -> VarId {
        assert!(layer < self.layers.len(), "layer {layer} out of range");
        let h = self.layers[layer].forward(sess, block, src_feats);
        if layer + 1 < self.layers.len() {
            sess.graph.relu(h)
        } else {
            h
        }
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(SageConv::params).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(SageConv::params_mut).collect()
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.for_each_param_mut(f);
        }
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn gnn_param_count(&self) -> usize {
        self.layers
            .iter()
            .flat_map(SageConv::gnn_params)
            .map(Param::len)
            .sum()
    }

    fn agg_param_count(&self) -> usize {
        self.layers
            .iter()
            .flat_map(SageConv::aggregator_params)
            .map(Param::len)
            .sum()
    }
}

/// Multi-layer GCN (Kipf & Welling) with self-loop right normalization;
/// ReLU + dropout between layers.
#[derive(Debug, Clone)]
pub struct Gcn {
    layers: Vec<GcnConv>,
    in_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    dropout_p: f32,
}

impl Gcn {
    /// Builds an `num_layers`-deep GCN: `in_dim → hidden…hidden →
    /// num_classes`.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        num_layers: usize,
        dropout_p: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        let mut layers = Vec::with_capacity(num_layers);
        for i in 0..num_layers {
            let li = if i == 0 { in_dim } else { hidden_dim };
            let lo = if i + 1 == num_layers { num_classes } else { hidden_dim };
            layers.push(GcnConv::new(li, lo, rng));
        }
        Self {
            layers,
            in_dim,
            hidden_dim,
            num_classes,
            dropout_p,
        }
    }
}

impl GnnModel for Gcn {
    fn forward(
        &self,
        sess: &mut Session,
        blocks: &[Block],
        input_feats: VarId,
        training: bool,
        rng: &mut dyn RngCore,
    ) -> VarId {
        assert_eq!(
            blocks.len(),
            self.layers.len(),
            "model expects {} blocks, got {}",
            self.layers.len(),
            blocks.len()
        );
        let mut h = input_feats;
        for (i, (layer, block)) in self.layers.iter().zip(blocks).enumerate() {
            h = layer.forward(sess, block, h);
            if i + 1 < self.layers.len() {
                h = sess.graph.relu(h);
                h = dropout(sess, h, self.dropout_p, training, rng);
            }
        }
        h
    }

    fn forward_layer(
        &self,
        sess: &mut Session,
        layer: usize,
        block: &Block,
        src_feats: VarId,
    ) -> VarId {
        assert!(layer < self.layers.len(), "layer {layer} out of range");
        let h = self.layers[layer].forward(sess, block, src_feats);
        if layer + 1 < self.layers.len() {
            sess.graph.relu(h)
        } else {
            h
        }
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(GcnConv::params).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(GcnConv::params_mut).collect()
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.for_each_param_mut(f);
        }
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn gnn_param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    fn agg_param_count(&self) -> usize {
        0
    }
}

/// Multi-layer GIN (sum aggregation + per-layer MLP with learnable ε);
/// ReLU + dropout between layers.
#[derive(Debug, Clone)]
pub struct Gin {
    layers: Vec<GinConv>,
    in_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    dropout_p: f32,
}

impl Gin {
    /// Builds an `num_layers`-deep GIN: each layer's MLP is
    /// `hidden_dim`-wide.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        num_layers: usize,
        dropout_p: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        let mut layers = Vec::with_capacity(num_layers);
        for i in 0..num_layers {
            let li = if i == 0 { in_dim } else { hidden_dim };
            let lo = if i + 1 == num_layers { num_classes } else { hidden_dim };
            layers.push(GinConv::new(li, hidden_dim, lo, rng));
        }
        Self {
            layers,
            in_dim,
            hidden_dim,
            num_classes,
            dropout_p,
        }
    }
}

impl GnnModel for Gin {
    fn forward(
        &self,
        sess: &mut Session,
        blocks: &[Block],
        input_feats: VarId,
        training: bool,
        rng: &mut dyn RngCore,
    ) -> VarId {
        assert_eq!(
            blocks.len(),
            self.layers.len(),
            "model expects {} blocks, got {}",
            self.layers.len(),
            blocks.len()
        );
        let mut h = input_feats;
        for (i, (layer, block)) in self.layers.iter().zip(blocks).enumerate() {
            h = layer.forward(sess, block, h);
            if i + 1 < self.layers.len() {
                h = sess.graph.relu(h);
                h = dropout(sess, h, self.dropout_p, training, rng);
            }
        }
        h
    }

    fn forward_layer(
        &self,
        sess: &mut Session,
        layer: usize,
        block: &Block,
        src_feats: VarId,
    ) -> VarId {
        assert!(layer < self.layers.len(), "layer {layer} out of range");
        let h = self.layers[layer].forward(sess, block, src_feats);
        if layer + 1 < self.layers.len() {
            sess.graph.relu(h)
        } else {
            h
        }
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(GinConv::params).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(GinConv::params_mut).collect()
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.for_each_param_mut(f);
        }
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn gnn_param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    fn agg_param_count(&self) -> usize {
        0
    }
}

/// Multi-layer GAT: hidden layers concatenate heads, the output layer
/// averages them; ELU + dropout between layers.
#[derive(Debug, Clone)]
pub struct Gat {
    layers: Vec<GatConv>,
    in_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    num_heads: usize,
    dropout_p: f32,
}

impl Gat {
    /// Builds an `num_layers`-deep GAT. `hidden_dim` is the *total* hidden
    /// width (split across `num_heads` heads).
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or `hidden_dim` is not divisible by
    /// `num_heads`.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        num_layers: usize,
        num_heads: usize,
        dropout_p: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        assert!(
            hidden_dim.is_multiple_of(num_heads),
            "hidden_dim {hidden_dim} must divide into {num_heads} heads"
        );
        let head_dim = hidden_dim / num_heads;
        let mut layers = Vec::with_capacity(num_layers);
        for i in 0..num_layers {
            let li = if i == 0 { in_dim } else { hidden_dim };
            if i + 1 == num_layers {
                layers.push(GatConv::new(li, num_classes, num_heads, HeadMerge::Mean, rng));
            } else {
                layers.push(GatConv::new(li, head_dim, num_heads, HeadMerge::Concat, rng));
            }
        }
        Self {
            layers,
            in_dim,
            hidden_dim,
            num_classes,
            num_heads,
            dropout_p,
        }
    }

    /// Attention heads per layer.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }
}

impl GnnModel for Gat {
    fn forward(
        &self,
        sess: &mut Session,
        blocks: &[Block],
        input_feats: VarId,
        training: bool,
        rng: &mut dyn RngCore,
    ) -> VarId {
        assert_eq!(
            blocks.len(),
            self.layers.len(),
            "model expects {} blocks, got {}",
            self.layers.len(),
            blocks.len()
        );
        let mut h = input_feats;
        for (i, (layer, block)) in self.layers.iter().zip(blocks).enumerate() {
            h = layer.forward(sess, block, h);
            if i + 1 < self.layers.len() {
                h = sess.graph.elu(h, 1.0);
                h = dropout(sess, h, self.dropout_p, training, rng);
            }
        }
        h
    }

    fn forward_layer(
        &self,
        sess: &mut Session,
        layer: usize,
        block: &Block,
        src_feats: VarId,
    ) -> VarId {
        assert!(layer < self.layers.len(), "layer {layer} out of range");
        let h = self.layers[layer].forward(sess, block, src_feats);
        if layer + 1 < self.layers.len() {
            sess.graph.elu(h, 1.0)
        } else {
            h
        }
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(GatConv::params).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(GatConv::params_mut).collect()
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.for_each_param_mut(f);
        }
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn gnn_param_count(&self) -> usize {
        // GAT's attention vectors are integral to the layer, not a
        // detachable aggregator; all parameters count as GNN parameters.
        self.params().iter().map(|p| p.len()).sum()
    }

    fn agg_param_count(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_graph::Batch;
    use betty_tensor::Reduction;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn rng() -> Pcg64Mcg {
        Pcg64Mcg::seed_from_u64(77)
    }

    fn two_layer_batch() -> Batch {
        let top = Block::new(vec![0, 1], &[(2, 0), (3, 1)]);
        let bottom = Block::new(top.src_globals().to_vec(), &[(4, 2), (5, 3), (4, 0)]);
        Batch::new(vec![bottom, top])
    }

    #[test]
    fn sage_forward_shapes() {
        let model = GraphSage::new(3, 8, 4, 2, AggregatorSpec::Mean, 0.0, &mut rng());
        let batch = two_layer_batch();
        let mut sess = Session::new();
        let n_in = batch.input_nodes().len();
        let x = sess.graph.leaf(Tensor::ones(&[n_in, 3]));
        let y = model.forward(&mut sess, batch.blocks(), x, false, &mut rng());
        assert_eq!(sess.graph.value(y).shape(), &[2, 4]);
    }

    #[test]
    fn sage_param_counts() {
        let model = GraphSage::new(3, 8, 4, 2, AggregatorSpec::Mean, 0.0, &mut rng());
        // Layer 0: self (3·8 + 8) + neigh (3·8 + 8) = 64; layer 1:
        // (8·4 + 4)·2 = 72 → 136 total, no aggregator params.
        assert_eq!(model.gnn_param_count(), 136);
        assert_eq!(model.agg_param_count(), 0);
        let lstm = GraphSage::new(3, 8, 4, 2, AggregatorSpec::Lstm, 0.0, &mut rng());
        assert!(lstm.agg_param_count() > 0);
        assert_eq!(lstm.total_param_count(), lstm.gnn_param_count() + lstm.agg_param_count());
    }

    #[test]
    fn gat_forward_shapes() {
        let model = Gat::new(3, 8, 4, 2, 2, 0.0, &mut rng());
        let batch = two_layer_batch();
        let mut sess = Session::new();
        let n_in = batch.input_nodes().len();
        let x = sess.graph.leaf(Tensor::ones(&[n_in, 3]));
        let y = model.forward(&mut sess, batch.blocks(), x, false, &mut rng());
        assert_eq!(sess.graph.value(y).shape(), &[2, 4]);
    }

    #[test]
    fn training_step_reduces_loss() {
        use crate::{Adam, Optimizer};
        let mut model = GraphSage::new(3, 8, 2, 2, AggregatorSpec::Mean, 0.0, &mut rng());
        let batch = two_layer_batch();
        let n_in = batch.input_nodes().len();
        let feats = betty_tensor::randn(&[n_in, 3], &mut Pcg64Mcg::seed_from_u64(4));
        let targets = [0usize, 1];
        let mut opt = Adam::new(0.05);
        let mut losses = Vec::new();
        for _ in 0..30 {
            let mut sess = Session::new();
            let x = sess.graph.leaf(feats.clone());
            let logits = model.forward(&mut sess, batch.blocks(), x, true, &mut rng());
            let loss = sess.graph.cross_entropy(logits, &targets, Reduction::Mean);
            losses.push(sess.graph.value(loss).item());
            crate::optim::zero_grads(&mut model.params_mut());
            sess.backward(loss, &mut model);
            opt.step(&mut model.params_mut());
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not halve: {losses:?}"
        );
    }

    #[test]
    fn dropout_changes_training_output_only() {
        let model = GraphSage::new(3, 8, 2, 2, AggregatorSpec::Mean, 0.5, &mut rng());
        let batch = two_layer_batch();
        let n_in = batch.input_nodes().len();
        let feats = Tensor::ones(&[n_in, 3]);
        let run = |training: bool, seed: u64| -> Tensor {
            let mut sess = Session::new();
            let x = sess.graph.leaf(feats.clone());
            let y = model.forward(
                &mut sess,
                batch.blocks(),
                x,
                training,
                &mut Pcg64Mcg::seed_from_u64(seed),
            );
            sess.graph.value(y).clone()
        };
        // Inference is deterministic regardless of rng.
        assert_eq!(run(false, 1), run(false, 2));
        // Training with different masks differs (overwhelmingly likely).
        assert_ne!(run(true, 1), run(true, 2));
    }
}

use betty_graph::Block;
use betty_tensor::VarId;
use rand::Rng;

use crate::{Linear, LstmCell, Param, Session};

/// Declarative choice of neighbor aggregator (what experiment configs name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregatorSpec {
    /// Degree-normalized mean of neighbor features.
    Mean,
    /// Unnormalized sum.
    Sum,
    /// Max-pooling over a learned transform (GraphSAGE-pool).
    Pool,
    /// Sequence LSTM over neighbor features (GraphSAGE-LSTM).
    Lstm,
}

impl AggregatorSpec {
    /// Name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AggregatorSpec::Mean => "mean",
            AggregatorSpec::Sum => "sum",
            AggregatorSpec::Pool => "pool",
            AggregatorSpec::Lstm => "lstm",
        }
    }
}

/// An instantiated neighbor aggregator, possibly holding parameters.
///
/// Given a [`Block`] and the source-node feature variable
/// `[num_src, in_dim]`, produces the aggregated neighbor representation
/// `[num_dst, in_dim]`. Destinations with no in-edges aggregate to zero.
#[derive(Debug, Clone)]
pub enum Aggregator {
    /// Mean of neighbor features.
    Mean,
    /// Sum of neighbor features.
    Sum,
    /// `max(relu(W·x + b))` over neighbors.
    Pool(Linear),
    /// Final hidden state of an LSTM run over the neighbor sequence,
    /// processed in exact in-degree buckets (equal-length sequences batch
    /// together — the "in-degree bucketing" the paper analyzes in §4.4.2).
    Lstm(LstmCell),
}

impl Aggregator {
    /// Instantiates an aggregator for `in_dim`-wide features.
    pub fn new(spec: AggregatorSpec, in_dim: usize, rng: &mut impl Rng) -> Self {
        match spec {
            AggregatorSpec::Mean => Aggregator::Mean,
            AggregatorSpec::Sum => Aggregator::Sum,
            AggregatorSpec::Pool => Aggregator::Pool(Linear::new(in_dim, in_dim, rng)),
            AggregatorSpec::Lstm => Aggregator::Lstm(LstmCell::new(in_dim, in_dim, rng)),
        }
    }

    /// The spec this aggregator was built from.
    pub fn spec(&self) -> AggregatorSpec {
        match self {
            Aggregator::Mean => AggregatorSpec::Mean,
            Aggregator::Sum => AggregatorSpec::Sum,
            Aggregator::Pool(_) => AggregatorSpec::Pool,
            Aggregator::Lstm(_) => AggregatorSpec::Lstm,
        }
    }

    /// Aggregates neighbor features for every destination of `block`.
    pub fn forward(&self, sess: &mut Session, block: &Block, src_feats: VarId) -> VarId {
        let mut edge_src = sess.graph.take_indices();
        edge_src.extend(block.edge_src_locals().iter().map(|&s| s as usize));
        let mut edge_dst = sess.graph.take_indices();
        edge_dst.extend(block.edge_dst_locals().iter().map(|&d| d as usize));
        let n_dst = block.num_dst();
        let out = match self {
            // Mean/Sum use the fused kernel: no [E, D] message tensor is
            // materialized (mirroring DGL's fused message passing, which is
            // why these aggregators are the memory-cheap ones in Fig. 2).
            Aggregator::Mean => {
                sess.graph
                    .fused_neighbor_mean(src_feats, &edge_src, &edge_dst, n_dst)
            }
            Aggregator::Sum => {
                sess.graph
                    .fused_neighbor_sum(src_feats, &edge_src, &edge_dst, n_dst)
            }
            Aggregator::Pool(fc) => {
                let messages = sess.graph.gather_rows(src_feats, &edge_src);
                let transformed = fc.forward(sess, messages);
                let activated = sess.graph.relu(transformed);
                sess.graph.segment_max(activated, &edge_dst, n_dst)
            }
            Aggregator::Lstm(cell) => lstm_aggregate(sess, cell, block, src_feats),
        };
        sess.graph.recycle_indices(edge_src);
        sess.graph.recycle_indices(edge_dst);
        out
    }

    /// The aggregator's own parameters (empty for Mean/Sum).
    pub fn params(&self) -> Vec<&Param> {
        match self {
            Aggregator::Mean | Aggregator::Sum => Vec::new(),
            Aggregator::Pool(fc) => fc.params(),
            Aggregator::Lstm(cell) => cell.params(),
        }
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            Aggregator::Mean | Aggregator::Sum => Vec::new(),
            Aggregator::Pool(fc) => fc.params_mut(),
            Aggregator::Lstm(cell) => cell.params_mut(),
        }
    }

    /// Visits the aggregator's parameters without materializing a list.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Aggregator::Mean | Aggregator::Sum => {}
            Aggregator::Pool(fc) => fc.for_each_param_mut(f),
            Aggregator::Lstm(cell) => cell.for_each_param_mut(f),
        }
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// LSTM aggregation with exact in-degree bucketing.
///
/// Destinations sharing an in-degree `L` form one bucket; their neighbor
/// lists stack into `L` timesteps of a batched LSTM. The final hidden state
/// of each bucket scatters back to its destinations' rows; buckets are
/// summed (their destination sets are disjoint, so this is pure placement).
fn lstm_aggregate(sess: &mut Session, cell: &LstmCell, block: &Block, src_feats: VarId) -> VarId {
    let n_dst = block.num_dst();
    let width = cell.hidden_dim();
    let mut combined: Option<VarId> = None;
    for (degree, nodes) in block.exact_degree_buckets() {
        if degree == 0 {
            continue; // isolated destinations aggregate to zero
        }
        // Timestep t gathers the t-th neighbor of every bucket member.
        let (mut h, mut c) = cell.zero_state(sess, nodes.len());
        for t in 0..degree {
            let mut idx = sess.graph.take_indices();
            idx.extend(
                nodes
                    .iter()
                    .map(|&d| block.in_edges(d as usize)[t] as usize),
            );
            let x = sess.graph.gather_rows(src_feats, &idx);
            sess.graph.recycle_indices(idx);
            let (nh, nc) = cell.step(sess, x, h, c);
            h = nh;
            c = nc;
        }
        let mut positions = sess.graph.take_indices();
        positions.extend(nodes.iter().map(|&d| d as usize));
        let placed = sess.graph.scatter_rows(h, &positions, n_dst);
        sess.graph.recycle_indices(positions);
        combined = Some(match combined {
            Some(acc) => sess.graph.add(acc, placed),
            None => placed,
        });
    }
    combined.unwrap_or_else(|| sess.graph.leaf(betty_tensor::Tensor::zeros(&[n_dst, width])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_tensor::Tensor;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn rng() -> Pcg64Mcg {
        Pcg64Mcg::seed_from_u64(5)
    }

    /// dst {0,1}: 0 ← {2,3}, 1 ← {3}.
    fn block() -> Block {
        Block::new(vec![0, 1], &[(2, 0), (3, 0), (3, 1)])
    }

    fn feats(sess: &mut Session) -> VarId {
        // src locals: [0, 1, 2, 3] → globals [0, 1, 2, 3].
        sess.graph.leaf(
            Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0, 2.0, 4.0, 6.0, 8.0], &[4, 2]).unwrap(),
        )
    }

    #[test]
    fn mean_averages_neighbors() {
        let mut sess = Session::new();
        let x = feats(&mut sess);
        let agg = Aggregator::new(AggregatorSpec::Mean, 2, &mut rng());
        let out = agg.forward(&mut sess, &block(), x);
        let v = sess.graph.value(out);
        assert_eq!(v.shape(), &[2, 2]);
        assert_eq!(v.row(0), &[4.0, 6.0]); // mean of (2,4) and (6,8)
        assert_eq!(v.row(1), &[6.0, 8.0]);
    }

    #[test]
    fn sum_adds_neighbors() {
        let mut sess = Session::new();
        let x = feats(&mut sess);
        let agg = Aggregator::new(AggregatorSpec::Sum, 2, &mut rng());
        let out = agg.forward(&mut sess, &block(), x);
        assert_eq!(sess.graph.value(out).row(0), &[8.0, 12.0]);
    }

    #[test]
    fn pool_is_monotone_in_neighbors() {
        let mut sess = Session::new();
        let x = feats(&mut sess);
        let agg = Aggregator::new(AggregatorSpec::Pool, 2, &mut rng());
        assert!(agg.num_params() > 0);
        let out = agg.forward(&mut sess, &block(), x);
        let v = sess.graph.value(out).clone();
        assert_eq!(v.shape(), &[2, 2]);
        // Pool output is elementwise max over per-neighbor transforms, and
        // dst 0's neighbor set is a superset of dst 1's → row0 ≥ row1.
        for cidx in 0..2 {
            assert!(v.at2(0, cidx) >= v.at2(1, cidx) - 1e-6);
        }
    }

    #[test]
    fn lstm_shapes_and_grad_flow() {
        let mut sess = Session::new();
        let x = feats(&mut sess);
        let mut agg = Aggregator::new(AggregatorSpec::Lstm, 2, &mut rng());
        let out = agg.forward(&mut sess, &block(), x);
        assert_eq!(sess.graph.value(out).shape(), &[2, 2]);
        let loss = sess.graph.sum(out);
        sess.graph.backward(loss);
        // Input features and LSTM weights both receive gradient.
        assert!(sess.graph.grad(x).unwrap().max_abs() > 0.0);
        for p in agg.params_mut() {
            let var = sess.bind(p);
            assert!(sess.graph.grad(var).is_some(), "LSTM param missing grad");
        }
    }

    #[test]
    fn isolated_destination_aggregates_to_zero() {
        let b = Block::new(vec![0, 1], &[(2, 0)]); // dst 1 isolated
        for spec in [
            AggregatorSpec::Mean,
            AggregatorSpec::Sum,
            AggregatorSpec::Pool,
            AggregatorSpec::Lstm,
        ] {
            let mut sess = Session::new();
            let x = sess.graph.leaf(Tensor::ones(&[3, 2]));
            let agg = Aggregator::new(spec, 2, &mut rng());
            let out = agg.forward(&mut sess, &b, x);
            let v = sess.graph.value(out);
            assert_eq!(v.row(1), &[0.0, 0.0], "{}: isolated dst", spec.name());
        }
    }

    #[test]
    fn lstm_empty_block_is_all_zero() {
        let b = Block::new(vec![0, 1], &[]);
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::ones(&[2, 3]));
        let agg = Aggregator::new(AggregatorSpec::Lstm, 3, &mut rng());
        let out = agg.forward(&mut sess, &b, x);
        assert_eq!(sess.graph.value(out).max_abs(), 0.0);
    }

    #[test]
    fn spec_roundtrip() {
        for spec in [
            AggregatorSpec::Mean,
            AggregatorSpec::Sum,
            AggregatorSpec::Pool,
            AggregatorSpec::Lstm,
        ] {
            assert_eq!(Aggregator::new(spec, 4, &mut rng()).spec(), spec);
        }
    }

    #[test]
    fn mean_gradcheck_through_block() {
        let input = betty_tensor::randn(&[4, 2], &mut Pcg64Mcg::seed_from_u64(8));
        let b = block();
        let res = betty_tensor::check::check_gradient(&input, |g, x| {
            let mut sess = Session::from_graph(std::mem::take(g));
            let agg = Aggregator::Mean;
            let out = agg.forward(&mut sess, &b, x);
            let loss = sess.graph.tanh(out);
            let loss = sess.graph.sum(loss);
            *g = sess.into_graph();
            loss
        });
        assert!(res.passes(1e-2), "{res:?}");
    }
}

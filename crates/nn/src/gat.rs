use betty_graph::Block;
use betty_tensor::{glorot_uniform, VarId};
use rand::Rng;

use crate::{Linear, Param, Session};

/// How a multi-head [`GatConv`] merges its heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadMerge {
    /// Concatenate head outputs (hidden layers): width `heads × out_dim`.
    Concat,
    /// Average head outputs (output layer): width `out_dim`.
    Mean,
}

/// A graph attention convolution (Veličković et al.), the paper's second
/// model.
///
/// Per head `h`: scores `e_{uv} = LeakyReLU(aₗ·Wh_u + aᵣ·Wh_v)` are
/// softmax-normalized over each destination's in-edges and used as weights
/// for summing the transformed source features.
#[derive(Debug, Clone)]
pub struct GatConv {
    fc: Linear,
    attn_l: Param,
    attn_r: Param,
    num_heads: usize,
    head_dim: usize,
    negative_slope: f32,
    merge: HeadMerge,
}

impl GatConv {
    /// A layer with `num_heads` heads of width `head_dim` each.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads == 0` or `head_dim == 0`.
    pub fn new(
        in_dim: usize,
        head_dim: usize,
        num_heads: usize,
        merge: HeadMerge,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_heads > 0, "at least one attention head required");
        assert!(head_dim > 0, "head dimension must be positive");
        Self {
            fc: Linear::new(in_dim, num_heads * head_dim, rng),
            attn_l: Param::new(glorot_uniform(num_heads * head_dim, 1, rng)),
            attn_r: Param::new(glorot_uniform(num_heads * head_dim, 1, rng)),
            num_heads,
            head_dim,
            negative_slope: 0.2,
            merge,
        }
    }

    /// Output width after head merging.
    pub fn out_dim(&self) -> usize {
        match self.merge {
            HeadMerge::Concat => self.num_heads * self.head_dim,
            HeadMerge::Mean => self.head_dim,
        }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Applies the layer over `block`, producing
    /// `[block.num_dst(), out_dim()]`.
    pub fn forward(&self, sess: &mut Session, block: &Block, src_feats: VarId) -> VarId {
        let edge_src: Vec<usize> = block.edge_src_locals().iter().map(|&s| s as usize).collect();
        let edge_dst: Vec<usize> = block.edge_dst_locals().iter().map(|&d| d as usize).collect();
        let n_dst = block.num_dst();

        let z = self.fc.forward(sess, src_feats); // [num_src, heads*dim]
        let mut head_outputs = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let zh = sess.graph.slice_cols(z, h * self.head_dim, self.head_dim);
            // Per-node attention halves: a_l·z and a_r·z (each [n, 1]).
            let al = sess.bind(&self.attn_l);
            let ar = sess.bind(&self.attn_r);
            // Head h's slice of the [heads·dim, 1] attention vectors.
            let rows: Vec<usize> = (h * self.head_dim..(h + 1) * self.head_dim).collect();
            let al_h = sess.graph.gather_rows(al, &rows);
            let ar_h = sess.graph.gather_rows(ar, &rows);
            let el = sess.graph.matmul(zh, al_h); // [num_src, 1]
            let er = sess.graph.matmul(zh, ar_h);
            // Edge scores: source half gathered by edge src, dest half by
            // edge dst (dst locals index the same feature rows — dst-first).
            let el_e = sess.graph.gather_rows(el, &edge_src);
            let er_e = sess.graph.gather_rows(er, &edge_dst);
            let e = sess.graph.add(el_e, er_e);
            let e = sess.graph.leaky_relu(e, self.negative_slope);
            let alpha = sess.graph.segment_softmax(e, &edge_dst, n_dst);
            // Weighted sum of transformed source features.
            let zh_e = sess.graph.gather_rows(zh, &edge_src);
            let weighted = sess.graph.scale_rows_by(zh_e, alpha);
            head_outputs.push(sess.graph.segment_sum(weighted, &edge_dst, n_dst));
        }
        match self.merge {
            HeadMerge::Concat => sess.graph.concat_cols(&head_outputs),
            HeadMerge::Mean => {
                let mut acc = head_outputs[0];
                for &h in &head_outputs[1..] {
                    acc = sess.graph.add(acc, h);
                }
                sess.graph.scale(acc, 1.0 / self.num_heads as f32)
            }
        }
    }

    /// All parameters.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.fc.params();
        p.push(&self.attn_l);
        p.push(&self.attn_r);
        p
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.fc.params_mut();
        p.push(&mut self.attn_l);
        p.push(&mut self.attn_r);
        p
    }

    /// Visits the layer's parameters without materializing a list.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc.for_each_param_mut(f);
        f(&mut self.attn_l);
        f(&mut self.attn_r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_tensor::{Reduction, Tensor};
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn rng() -> Pcg64Mcg {
        Pcg64Mcg::seed_from_u64(33)
    }

    fn block() -> Block {
        Block::new(vec![0, 1], &[(2, 0), (3, 0), (3, 1)])
    }

    #[test]
    fn concat_output_width() {
        let layer = GatConv::new(3, 4, 2, HeadMerge::Concat, &mut rng());
        assert_eq!(layer.out_dim(), 8);
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::ones(&[4, 3]));
        let y = layer.forward(&mut sess, &block(), x);
        assert_eq!(sess.graph.value(y).shape(), &[2, 8]);
    }

    #[test]
    fn mean_merge_output_width() {
        let layer = GatConv::new(3, 4, 3, HeadMerge::Mean, &mut rng());
        assert_eq!(layer.out_dim(), 4);
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::ones(&[4, 3]));
        let y = layer.forward(&mut sess, &block(), x);
        assert_eq!(sess.graph.value(y).shape(), &[2, 4]);
    }

    #[test]
    fn attention_weights_sum_to_one_implicitly() {
        // With identical source features, attention output equals the
        // transformed feature regardless of weights (convexity check).
        let layer = GatConv::new(2, 3, 1, HeadMerge::Concat, &mut rng());
        let mut sess = Session::new();
        let x = sess.graph.leaf(Tensor::ones(&[4, 2]));
        let y = layer.forward(&mut sess, &block(), x);
        let v = sess.graph.value(y);
        // Both destinations aggregate identical rows → identical outputs.
        assert!(v.row(0).iter().zip(v.row(1)).all(|(a, b)| (a - b).abs() < 1e-5));
    }

    #[test]
    fn all_params_receive_grad() {
        let mut layer = GatConv::new(2, 3, 2, HeadMerge::Concat, &mut rng());
        let mut sess = Session::new();
        let x = sess
            .graph
            .leaf(betty_tensor::randn(&[4, 2], &mut Pcg64Mcg::seed_from_u64(2)));
        let y = layer.forward(&mut sess, &block(), x);
        let loss = sess.graph.cross_entropy(y, &[0, 1], Reduction::Mean);
        sess.graph.backward(loss);
        for p in layer.params_mut() {
            let var = sess.bind(p);
            assert!(sess.graph.grad(var).is_some(), "param missing grad");
        }
    }

    #[test]
    #[should_panic(expected = "at least one attention head")]
    fn zero_heads_rejected() {
        GatConv::new(2, 3, 0, HeadMerge::Concat, &mut rng());
    }
}

//! Partition-ahead pipeline: sample + REG-partition epoch `t + 1` on
//! background workers while epoch `t` trains.
//!
//! Betty's planning overhead (neighbor sampling, REG construction + cut,
//! micro-batch extraction) sits on the critical path of every epoch in the
//! synchronous design. But planning for the *next* epoch needs nothing the
//! current epoch produces — only the sampler's RNG cursor, which advances
//! deterministically — so it can run concurrently with forward/backward
//! compute on spare [`betty_runtime`] workers.
//!
//! # Determinism
//!
//! The pipeline reproduces the synchronous path bit for bit:
//!
//! * **Sampling order.** A dedicated driver thread owns a clone of the
//!   runner's sampler RNG and draws every batch *sequentially*, exactly as
//!   the synchronous loop would; only the (pure) partitioning work fans
//!   out to the worker pool. Each staged bundle records the RNG state
//!   after its draw, and the runner adopts that state at the handoff — so
//!   dropping the pipeline at any point lets the synchronous path resume
//!   from the very same cursor.
//! * **Handoff order.** Bundles return through an index-ordered queue
//!   ([`betty_runtime::OrderedQueue`], the same discipline as
//!   [`betty_runtime::parallel_map`]): epoch `t`'s consumer blocks until
//!   bundle `t` specifically is ready, regardless of completion order.
//! * **Pure stages.** Partitioner strategies are stateless (`&self`), so
//!   a plan computed on a worker is identical to one computed inline.
//!
//! # Memory
//!
//! Staged plans hold real host memory (micro-batch block stacks) destined
//! for the device. Consumers charge each bundle's transfer bytes to the
//! device ledger as [`betty_device::MemoryCategory::PlanAhead`] at the
//! epoch boundary (see `Trainer::charge_plan_ahead`), and the pipeline's
//! depth governor ([`PlanPipeline::top_up`]) stops requesting new bundles
//! while the staged total exceeds the device budget — shrinking effective
//! depth *before* anything escalates `K`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use rand_pcg::Pcg64Mcg;

use betty_graph::{sample_batch_in, Batch, CsrGraph, NodeId};
use betty_runtime::{OrderedQueue, WorkerPool};

use crate::planner::{MemoryAwarePlanner, Plan, PlanError};
use crate::strategy::{build_strategy, StrategyKind};

/// How staged epochs are planned — mirrors the synchronous entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Exactly `k` micro-batches (`Runner::train_epoch_betty`): planning
    /// is infallible.
    Fixed(usize),
    /// Memory-aware selection against the planner's own capacity, from
    /// `K = 1` (`Runner::train_epoch_auto` and attempt 0 of
    /// `Runner::train_epoch_auto_recovering`).
    Auto,
}

/// One staged epoch: the sampled batch, its plan, and the bookkeeping the
/// consumer needs to take over as if it had done the work itself.
pub struct StagedBundle {
    /// The epoch's full training batch, sampled with the driver's
    /// sequential RNG cursor.
    pub batch: Batch,
    /// The plan for `batch` ([`PlanMode::Fixed`] plans never fail).
    pub plan: Result<Plan, PlanError>,
    /// Sampler RNG state *after* drawing `batch`; the consumer adopts it
    /// so later synchronous sampling continues the same stream.
    pub rng_after: u128,
    /// Total transfer bytes (blocks + features + labels) over the plan's
    /// micro-batches — what the consumer charges to the `plan ahead`
    /// ledger category. 0 for failed plans.
    pub staged_bytes: usize,
    /// Wall-clock seconds the driver spent sampling `batch`.
    pub sample_sec: f64,
    /// When sampling began (start of this bundle's staging window).
    pub sample_started: Instant,
    /// When planning finished on the worker.
    pub plan_finished: Instant,
}

impl std::fmt::Debug for StagedBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedBundle")
            .field("staged_bytes", &self.staged_bytes)
            .field("ok", &self.plan.is_ok())
            .finish()
    }
}

/// Everything the pipeline needs to reproduce the runner's synchronous
/// sampling + planning on background threads.
pub struct PipelineSpec {
    /// Reversed (in-edge) graph the sampler walks.
    pub graph: Arc<CsrGraph>,
    /// Seed nodes of every staged batch (the training split).
    pub seeds: Arc<Vec<NodeId>>,
    /// Per-layer sampling fanouts.
    pub fanouts: Vec<usize>,
    /// The runner's planner (cheap to clone: estimator + scalars).
    pub planner: MemoryAwarePlanner,
    /// Partitioning strategy; rebuilt per job — strategies are stateless,
    /// so a fresh instance plans identically to a reused one.
    pub strategy: StrategyKind,
    /// Strategy seed (the runner's experiment seed).
    pub seed: u64,
    /// Fixed-K or auto planning.
    pub mode: PlanMode,
    /// Maximum bundles in flight (≥ 1).
    pub depth: usize,
    /// Sampler RNG state to start the sequential cursor from.
    pub rng_state: u128,
    /// Fingerprint of the dataset the seeds/graph came from, for
    /// [`PlanPipeline::matches`].
    pub dataset_key: u64,
    /// Worker threads configured at spawn time.
    pub threads: usize,
}

/// A bounded-depth pipeline staging `(Batch, Plan)` bundles for future
/// epochs. See the [module docs](self) for the determinism argument.
pub struct PlanPipeline {
    req_tx: Option<mpsc::Sender<()>>,
    driver: Option<JoinHandle<()>>,
    queue: Arc<OrderedQueue<StagedBundle>>,
    staged_bytes: Arc<AtomicUsize>,
    /// When each outstanding request was issued, oldest first — the
    /// consumer-side start of each bundle's staging window (issue
    /// happens *before* the overlapped epoch trains, so a span anchored
    /// here contains that epoch's compute spans by construction; the
    /// driver's own sampling start races with it).
    request_times: std::collections::VecDeque<Instant>,
    requested: usize,
    consumed: usize,
    depth: usize,
    strategy: StrategyKind,
    mode: PlanMode,
    dataset_key: u64,
}

impl std::fmt::Debug for PlanPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanPipeline")
            .field("depth", &self.depth)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl PlanPipeline {
    /// Starts the driver thread and its worker pool. Nothing is staged
    /// until the first [`PlanPipeline::top_up`] /
    /// [`PlanPipeline::next_bundle`].
    pub fn spawn(spec: PipelineSpec) -> Self {
        let depth = spec.depth.max(1);
        // The consuming thread trains while workers plan; leave it one
        // core, and never park more workers than the depth can feed.
        let pool_threads = spec.threads.saturating_sub(1).min(depth).max(1);
        let queue = Arc::new(OrderedQueue::new());
        let staged_bytes = Arc::new(AtomicUsize::new(0));
        let (req_tx, req_rx) = mpsc::channel::<()>();
        let driver = {
            let queue = Arc::clone(&queue);
            let staged_bytes = Arc::clone(&staged_bytes);
            let strategy = spec.strategy;
            let seed = spec.seed;
            let mode = spec.mode;
            let graph = spec.graph;
            let seeds = spec.seeds;
            let fanouts = spec.fanouts;
            let planner = spec.planner;
            let mut rng = Pcg64Mcg::new(spec.rng_state);
            std::thread::spawn(move || {
                let pool = WorkerPool::new(pool_threads);
                let mut issued = 0usize;
                // One request = one staged epoch. Sampling stays on this
                // thread so the RNG stream is drawn strictly in epoch
                // order; the (pure) planning fans out to the pool.
                while req_rx.recv().is_ok() {
                    let index = issued;
                    issued += 1;
                    let sample_started = Instant::now();
                    let batch = sample_batch_in(&graph, &seeds, &fanouts, &mut rng);
                    let sample_sec = sample_started.elapsed().as_secs_f64();
                    let rng_after = rng.state();
                    let queue = Arc::clone(&queue);
                    let staged_bytes = Arc::clone(&staged_bytes);
                    let planner = planner.clone();
                    pool.submit(move || {
                        let strategy_impl = build_strategy(strategy, seed);
                        let plan = match mode {
                            PlanMode::Fixed(k) => {
                                Ok(planner.plan_fixed(&batch, strategy_impl.as_ref(), k))
                            }
                            PlanMode::Auto => planner.plan(&batch, strategy_impl.as_ref(), 1),
                        };
                        let bytes = plan.as_ref().map_or(0, |p| {
                            p.estimates.iter().map(|e| e.transfer_bytes()).sum()
                        });
                        staged_bytes.fetch_add(bytes, Ordering::Relaxed);
                        queue.push(
                            index,
                            StagedBundle {
                                batch,
                                plan,
                                rng_after,
                                staged_bytes: bytes,
                                sample_sec,
                                sample_started,
                                plan_finished: Instant::now(),
                            },
                        );
                    });
                }
                // Sender dropped: no more requests will ever arrive.
                // Close the queue at the issue horizon — pops below it
                // still block for in-flight jobs (the pool joins them on
                // drop, pushing every pending bundle first); pops at or
                // beyond it return `None` immediately.
                queue.close_at(issued);
                drop(pool);
            })
        };
        Self {
            req_tx: Some(req_tx),
            driver: Some(driver),
            queue,
            staged_bytes,
            request_times: std::collections::VecDeque::new(),
            requested: 0,
            consumed: 0,
            depth,
            strategy: spec.strategy,
            mode: spec.mode,
            dataset_key: spec.dataset_key,
        }
    }

    /// Whether this pipeline was built for the same work its caller is
    /// about to consume. A mismatch (strategy, plan mode, dataset, or
    /// depth changed between epochs) means every staged bundle is wrong
    /// and the pipeline must be dropped.
    pub fn matches(
        &self,
        strategy: StrategyKind,
        mode: PlanMode,
        dataset_key: u64,
        depth: usize,
    ) -> bool {
        self.strategy == strategy
            && self.mode == mode
            && self.dataset_key == dataset_key
            && self.depth == depth.max(1)
    }

    /// Bundles requested but not yet consumed — what an invalidation
    /// throws away.
    pub fn in_flight(&self) -> usize {
        self.requested - self.consumed
    }

    /// Asks the driver to stage one more epoch. A send failure (driver
    /// died) is deliberately ignored: the next
    /// [`PlanPipeline::next_bundle`] will observe the closed queue and
    /// report it.
    fn request_one(&mut self) {
        if let Some(tx) = &self.req_tx {
            let _ = tx.send(());
        }
        self.request_times.push_back(Instant::now());
        self.requested += 1;
    }

    /// The staging governor: keep up to `depth` bundles in flight, but
    /// stop requesting while the staged transfer bytes already exceed
    /// `budget_bytes` — backpressure that shrinks effective pipeline
    /// depth *before* memory pressure can force `K` to escalate. Purely
    /// advisory: it times when work is requested, never what any bundle
    /// contains, so results stay bit-identical at every budget.
    pub fn top_up(&mut self, budget_bytes: usize) {
        while self.in_flight() < self.depth {
            if self.staged_bytes.load(Ordering::Relaxed) > budget_bytes {
                break;
            }
            self.request_one();
        }
    }

    /// Blocks until the next staged epoch (in strict issue order) is
    /// ready and returns it with the seconds spent waiting and the
    /// instant its request was issued (the start of its staging
    /// window). Requests one bundle first if none is outstanding, so
    /// depth 1 behaves as "prepare during the previous epoch", not
    /// "prepare on demand". `None` means the driver is gone (panicked
    /// worker or closed queue); the caller should fall back to
    /// synchronous planning.
    pub fn next_bundle(&mut self) -> Option<(StagedBundle, f64, Instant)> {
        if self.in_flight() == 0 {
            self.request_one();
        }
        let wait_started = Instant::now();
        let bundle = self.queue.pop(self.consumed)?;
        let wait_sec = wait_started.elapsed().as_secs_f64();
        self.consumed += 1;
        let requested_at = self
            .request_times
            .pop_front()
            .unwrap_or(bundle.sample_started);
        self.staged_bytes
            .fetch_sub(bundle.staged_bytes, Ordering::Relaxed);
        Some((bundle, wait_sec, requested_at))
    }
}

impl Drop for PlanPipeline {
    fn drop(&mut self) {
        // Hang up the request channel; the driver drains, closes the
        // queue, joins its pool, and exits. Joining here bounds the
        // stragglers' lifetime to the drop.
        drop(self.req_tx.take());
        if let Some(driver) = self.driver.take() {
            let _ = driver.join();
        }
    }
}

/// Cheap FNV-1a fingerprint of the sampling inputs a pipeline bakes in,
/// used to detect a caller switching datasets between epochs.
pub fn dataset_key(dataset: &betty_data::Dataset) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(dataset.graph.num_nodes() as u64);
    eat(dataset.train_idx.len() as u64);
    for &node in &dataset.train_idx {
        eat(u64::from(node));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_data::DatasetSpec;
    use betty_device::{MemoryEstimator, ModelShape};

    fn dataset() -> betty_data::Dataset {
        DatasetSpec::cora().scaled(0.1).with_feature_dim(8).generate(3)
    }

    fn planner() -> MemoryAwarePlanner {
        let estimator = MemoryEstimator::new(ModelShape {
            in_dim: 8,
            hidden_dim: 8,
            num_classes: 4,
            num_layers: 2,
            aggregator: betty_device::AggregatorKind::Mean,
            params_gnn: 100,
            params_agg: 0,
        });
        MemoryAwarePlanner::new(estimator, usize::MAX, 64)
    }

    fn spec(ds: &betty_data::Dataset, depth: usize) -> PipelineSpec {
        PipelineSpec {
            graph: Arc::new(ds.graph.reverse()),
            seeds: Arc::new(ds.train_idx.clone()),
            fanouts: vec![3, 4],
            planner: planner(),
            strategy: StrategyKind::Betty,
            seed: 7,
            mode: PlanMode::Fixed(3),
            depth,
            rng_state: 0x1234_5678_9abc_def0,
            dataset_key: dataset_key(ds),
            threads: 4,
        }
    }

    #[test]
    fn staged_bundles_match_the_synchronous_sequence() {
        let ds = dataset();
        let graph = ds.graph.reverse();
        // Reference: the synchronous sampler/planner sequence.
        let mut rng = Pcg64Mcg::new(0x1234_5678_9abc_def0);
        let planner = planner();
        let strategy = build_strategy(StrategyKind::Betty, 7);
        let mut expected = Vec::new();
        for _ in 0..4 {
            let batch = sample_batch_in(&graph, &ds.train_idx, &[3, 4], &mut rng);
            let plan = planner.plan_fixed(&batch, strategy.as_ref(), 3);
            expected.push((batch, plan.parts, rng.state()));
        }

        let mut pipeline = PlanPipeline::spawn(spec(&ds, 2));
        pipeline.top_up(usize::MAX);
        for (batch, parts, rng_after) in &expected {
            let (bundle, _wait, _req) = pipeline.next_bundle().expect("driver alive");
            pipeline.top_up(usize::MAX);
            assert_eq!(&bundle.batch, batch, "staged batch must match sync sampling");
            assert_eq!(&bundle.plan.unwrap().parts, parts);
            assert_eq!(bundle.rng_after, *rng_after);
        }
    }

    #[test]
    fn staged_byte_governor_caps_requests_not_results() {
        let ds = dataset();
        let mut pipeline = PlanPipeline::spawn(spec(&ds, 4));
        // A zero budget admits at most the one unconditional request.
        pipeline.top_up(0);
        let first_wave = pipeline.in_flight();
        assert!(first_wave <= 4);
        let (bundle, _, _) = pipeline.next_bundle().expect("driver alive");
        assert!(bundle.staged_bytes > 0, "plans stage real transfer bytes");
        // An unbounded budget fills the pipeline to depth.
        pipeline.top_up(usize::MAX);
        assert_eq!(pipeline.in_flight(), 4);
    }

    #[test]
    fn matches_rejects_any_changed_knob() {
        let ds = dataset();
        let key = dataset_key(&ds);
        let pipeline = PlanPipeline::spawn(spec(&ds, 2));
        assert!(pipeline.matches(StrategyKind::Betty, PlanMode::Fixed(3), key, 2));
        assert!(!pipeline.matches(StrategyKind::Range, PlanMode::Fixed(3), key, 2));
        assert!(!pipeline.matches(StrategyKind::Betty, PlanMode::Auto, key, 2));
        assert!(!pipeline.matches(StrategyKind::Betty, PlanMode::Fixed(3), key ^ 1, 2));
        assert!(!pipeline.matches(StrategyKind::Betty, PlanMode::Fixed(3), key, 3));
    }

    #[test]
    fn dropping_mid_flight_joins_cleanly() {
        let ds = dataset();
        let mut pipeline = PlanPipeline::spawn(spec(&ds, 3));
        pipeline.top_up(usize::MAX);
        assert_eq!(pipeline.in_flight(), 3);
        drop(pipeline); // must not hang or leak panicking threads
    }

    #[test]
    fn dataset_key_tracks_the_training_split() {
        let a = dataset();
        let b = DatasetSpec::cora().scaled(0.2).with_feature_dim(8).generate(3);
        assert_eq!(dataset_key(&a), dataset_key(&a));
        assert_ne!(dataset_key(&a), dataset_key(&b));
    }

    #[test]
    fn rng_handoff_resumes_the_stream_exactly() {
        let ds = dataset();
        let mut pipeline = PlanPipeline::spawn(spec(&ds, 1));
        let (bundle, _, _) = pipeline.next_bundle().expect("driver alive");
        drop(pipeline);
        // A consumer adopting `rng_after` draws the same next batch the
        // pipeline would have staged.
        let mut adopted = Pcg64Mcg::new(bundle.rng_after);
        let graph = ds.graph.reverse();
        let next_sync = sample_batch_in(&graph, &ds.train_idx, &[3, 4], &mut adopted);
        let mut reference = Pcg64Mcg::new(0x1234_5678_9abc_def0);
        let _first = sample_batch_in(&graph, &ds.train_idx, &[3, 4], &mut reference);
        let second = sample_batch_in(&graph, &ds.train_idx, &[3, 4], &mut reference);
        assert_eq!(next_sync, second);
    }
}

//! High-level training loop with validation-based early stopping.

use betty_data::Dataset;
use betty_nn::{LrSchedule, TrainState};

use crate::durable::{
    CheckpointPlan, CTR_BEST_EPOCH, CTR_NEXT_EPOCH, CTR_SINCE_BEST, FLT_BEST_VAL,
};
use crate::recovery::RecoveryLog;
use crate::runner::{RunError, Runner};
use crate::stats::EpochStats;
use crate::strategy::StrategyKind;

/// Configuration of [`fit`].
pub struct FitConfig<'a> {
    /// Partitioning strategy for every epoch.
    pub strategy: StrategyKind,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Stop after this many epochs without validation improvement
    /// (`None` disables early stopping).
    pub patience: Option<usize>,
    /// Optional learning-rate schedule applied per epoch.
    pub schedule: Option<&'a dyn LrSchedule>,
    /// Base learning rate the schedule scales (ignored without a
    /// schedule).
    pub base_lr: f32,
    /// Optional durable checkpointing: a full session state is written
    /// atomically after every `every`-th epoch (and the last), so a
    /// killed run can resume bit-identically.
    pub checkpoint: Option<CheckpointPlan>,
    /// Optional session state to resume from (see
    /// [`crate::durable::load_checkpoint_state`]). Training continues at
    /// the checkpoint's next epoch with its loss history, early-stopping
    /// state, RNG streams, and step counters restored.
    pub resume: Option<TrainState>,
}

impl Default for FitConfig<'_> {
    fn default() -> Self {
        Self {
            strategy: StrategyKind::Betty,
            max_epochs: 100,
            patience: Some(10),
            schedule: None,
            base_lr: 3e-3,
            checkpoint: None,
            resume: None,
        }
    }
}

impl std::fmt::Debug for FitConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitConfig")
            .field("strategy", &self.strategy)
            .field("max_epochs", &self.max_epochs)
            .field("patience", &self.patience)
            .field("has_schedule", &self.schedule.is_some())
            .field("checkpoint", &self.checkpoint)
            .field("resuming", &self.resume.is_some())
            .finish()
    }
}

/// Result of a [`fit`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Epochs actually trained *by this call* (a resumed run counts only
    /// the epochs after the checkpoint).
    pub epochs_run: usize,
    /// Best validation accuracy observed.
    pub best_val_accuracy: f64,
    /// Epoch index of the best validation accuracy.
    pub best_epoch: usize,
    /// Whether early stopping triggered before `max_epochs`.
    pub early_stopped: bool,
    /// Per-epoch training stats (this call's epochs only).
    pub history: Vec<EpochStats>,
    /// Per-epoch training losses across the *whole* session, including
    /// epochs trained before a resume — the series durable checkpoints
    /// carry, so an interrupted-and-resumed run can be compared
    /// loss-for-loss against an uninterrupted one.
    pub loss_history: Vec<f64>,
    /// Injected faults and recovery actions observed across the run
    /// (empty when nothing faulted).
    pub recovery: RecoveryLog,
}

/// Trains with memory-aware Betty partitioning until `max_epochs` or
/// validation patience runs out; evaluates on `dataset.val_idx` each epoch.
///
/// Each epoch runs with checkpointed OOM recovery
/// ([`Runner::train_epoch_auto_recovering`]): mid-step OOMs — genuine or
/// injected by the config's fault plan — roll the model, optimizer and
/// RNG back to the epoch-start snapshot and retry with an escalated
/// plan, up to the config's retry budget. The returned report's
/// [`recovery`](FitReport::recovery) log records everything that
/// happened.
///
/// Note: early stopping monitors accuracy only — the *returned* model is
/// the final one (checkpoint the best epoch externally via
/// [`betty_nn::save_checkpoint`] if needed).
///
/// Note on [`ExperimentConfig::plan_ahead`](crate::ExperimentConfig):
/// `fit` evaluates on the validation split after *every* epoch, and
/// evaluation sampling resets the partition-ahead pipeline (it draws
/// from the same RNG stream the staged batches were sampled ahead of).
/// Under `fit`, each epoch's pipeline therefore restarts cold and the
/// overlap is effectively zero — results remain bit-identical, but the
/// speedup only materializes with sparser evaluation cadences (the CLI
/// evaluates every 5th epoch).
///
/// # Errors
///
/// Propagates planning/training failures ([`RunError`]), including
/// [`RunError::RetryExhausted`] when recovery ran out of retries.
pub fn fit(runner: &mut Runner, dataset: &Dataset, config: &FitConfig<'_>) -> Result<FitReport, RunError> {
    let mut recovery = RecoveryLog::new();
    fit_with_log(runner, dataset, config, &mut recovery).map(|mut report| {
        report.recovery = recovery;
        report
    })
}

/// Like [`fit`], but recording faults and recovery actions into a
/// caller-owned log — on failure the log survives with everything
/// recorded up to the fatal error, so callers (e.g. the CLI) can print
/// a recovery summary alongside the error.
///
/// The returned report's own [`recovery`](FitReport::recovery) field is
/// left empty; `log` is the authoritative record.
///
/// # Errors
///
/// Propagates planning/training failures ([`RunError`]).
pub fn fit_with_log(
    runner: &mut Runner,
    dataset: &Dataset,
    config: &FitConfig<'_>,
    log: &mut RecoveryLog,
) -> Result<FitReport, RunError> {
    if let Some(plan) = &config.checkpoint {
        plan.validate().map_err(RunError::Checkpoint)?;
    }
    let mut best_val = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;
    let mut since_best = 0usize;
    let mut start_epoch = 0usize;
    let mut loss_history: Vec<f64> = Vec::new();
    if let Some(state) = &config.resume {
        runner.import_session(state)?;
        let ctr = |i: usize| state.counters.get(i).copied().unwrap_or(0) as usize;
        start_epoch = ctr(CTR_NEXT_EPOCH);
        best_epoch = ctr(CTR_BEST_EPOCH);
        since_best = ctr(CTR_SINCE_BEST);
        best_val = state
            .floats
            .get(FLT_BEST_VAL)
            .copied()
            .unwrap_or(f64::NEG_INFINITY);
        loss_history = state.history.clone();
    }
    let mut history = Vec::new();
    let mut early_stopped = false;
    for epoch in start_epoch..config.max_epochs {
        if let Some(schedule) = config.schedule {
            runner.set_learning_rate(schedule.lr_at(config.base_lr, epoch));
        }
        log.set_epoch(epoch);
        let (stats, _k) = runner.train_epoch_auto_recovering(dataset, config.strategy, log)?;
        loss_history.push(stats.loss);
        history.push(stats);
        let val = runner.evaluate(dataset, &dataset.val_idx);
        if val > best_val {
            best_val = val;
            best_epoch = epoch;
            since_best = 0;
        } else {
            since_best += 1;
            if let Some(patience) = config.patience {
                if since_best >= patience {
                    early_stopped = true;
                }
            }
        }
        // Saved *after* evaluation, so the captured sampling-RNG state
        // includes the evaluation's consumption and a resumed run
        // replays the exact same stream an uninterrupted run sees.
        if let Some(plan) = &config.checkpoint {
            if plan.due_after(epoch, config.max_epochs) || early_stopped {
                let mut state = runner.export_session();
                state.counters.push((epoch + 1) as u64); // CTR_NEXT_EPOCH
                state.counters.push(best_epoch as u64); // CTR_BEST_EPOCH
                state.counters.push(since_best as u64); // CTR_SINCE_BEST
                state.floats = vec![best_val]; // FLT_BEST_VAL
                state.history = loss_history.clone();
                plan.save(&state, epoch)?;
            }
        }
        if early_stopped {
            break;
        }
    }
    Ok(FitReport {
        epochs_run: history.len(),
        best_val_accuracy: best_val,
        best_epoch,
        early_stopped,
        history,
        loss_history,
        recovery: RecoveryLog::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use betty_data::DatasetSpec;
    use betty_device::gib;
    use betty_nn::{AggregatorSpec, StepDecay};

    fn dataset() -> Dataset {
        DatasetSpec::cora()
            .scaled(0.08)
            .with_feature_dim(12)
            .generate(3)
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig {
            fanouts: vec![4, 6],
            hidden_dim: 12,
            aggregator: AggregatorSpec::Mean,
            dropout: 0.0,
            learning_rate: 1e-2,
            capacity_bytes: gib(4),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn fit_trains_and_reports() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let report = fit(
            &mut runner,
            &ds,
            &FitConfig {
                max_epochs: 8,
                patience: None,
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.epochs_run, 8);
        assert!(!report.early_stopped);
        assert!(report.best_val_accuracy > 0.0);
        assert!(report.history.last().unwrap().loss < report.history[0].loss);
    }

    #[test]
    fn early_stopping_triggers_with_zero_patience() {
        // Patience 0: stop at the first epoch that fails to improve.
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let report = fit(
            &mut runner,
            &ds,
            &FitConfig {
                max_epochs: 50,
                patience: Some(0),
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert!(report.epochs_run < 50, "must stop early");
        assert!(report.early_stopped);
        assert!(report.best_epoch < report.epochs_run);
    }

    fn param_bits(runner: &Runner) -> Vec<u32> {
        runner
            .trainer()
            .model()
            .params()
            .iter()
            .flat_map(|p| p.value().data().iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn interrupted_and_resumed_fit_is_bit_identical() {
        use crate::durable::{latest_checkpoint, load_checkpoint_state, CheckpointPlan};
        let ds = dataset();
        // Dropout > 0 so the restored trainer RNG stream actually matters.
        let cfg = ExperimentConfig {
            dropout: 0.2,
            ..config()
        };
        let dir = std::env::temp_dir().join(format!("betty-fit-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Uninterrupted baseline: 6 epochs straight through.
        let mut base = Runner::new(&ds, &cfg, 0);
        let baseline = fit(
            &mut base,
            &ds,
            &FitConfig {
                max_epochs: 6,
                patience: None,
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert_eq!(baseline.loss_history.len(), 6);

        // "Killed" run: 3 epochs with per-epoch checkpoints, then gone.
        let mut first = Runner::new(&ds, &cfg, 0);
        fit(
            &mut first,
            &ds,
            &FitConfig {
                max_epochs: 3,
                patience: None,
                checkpoint: Some(CheckpointPlan::new(&dir, 1)),
                ..FitConfig::default()
            },
        )
        .unwrap();

        // Resume in a *fresh* runner — deliberately built with a different
        // seed, as a new process would be free to do: every piece of state
        // that matters must come from the checkpoint, not the constructor.
        let (epoch, path) = latest_checkpoint(&dir).unwrap().expect("checkpoints written");
        assert_eq!(epoch, 2);
        let state = load_checkpoint_state(&path).unwrap();
        let mut resumed = Runner::new(&ds, &cfg, 999);
        let report = fit(
            &mut resumed,
            &ds,
            &FitConfig {
                max_epochs: 6,
                patience: None,
                resume: Some(state),
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.epochs_run, 3, "resume trains only the remaining epochs");
        assert_eq!(report.loss_history.len(), 6);
        for (i, (a, b)) in baseline
            .loss_history
            .iter()
            .zip(&report.loss_history)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "epoch {i}: resumed loss {b} != uninterrupted loss {a}"
            );
        }
        assert_eq!(
            param_bits(&base),
            param_bits(&resumed),
            "final parameters must be bit-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_different_experiment() {
        let ds = dataset();
        let donor = Runner::new(&ds, &config(), 0);
        let state = donor.export_session();
        let other = ExperimentConfig {
            hidden_dim: 24,
            ..config()
        };
        let mut runner = Runner::new(&ds, &other, 0);
        let err = fit(
            &mut runner,
            &ds,
            &FitConfig {
                max_epochs: 2,
                resume: Some(state),
                ..FitConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Checkpoint(_)), "{err:?}");
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn resume_rejects_a_checkpoint_from_another_precision() {
        // A bf16 run trains a different function than an f32 run (values
        // round through the 16-bit grid), so resuming across precisions
        // must fail the fingerprint check up front.
        use betty_tensor::DType;
        let ds = dataset();
        let donor = Runner::new(&ds, &config(), 0);
        let f32_state = donor.export_session();
        let bf16_cfg = ExperimentConfig {
            precision: DType::Bf16,
            ..config()
        };
        let mut runner = Runner::new(&ds, &bf16_cfg, 0);
        let err = fit(
            &mut runner,
            &ds,
            &FitConfig {
                max_epochs: 2,
                resume: Some(f32_state),
                ..FitConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Checkpoint(_)), "{err:?}");
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn injected_nan_rolls_back_and_the_run_completes_finite() {
        use betty_device::FaultPlan;
        let ds = dataset();
        let clean_cfg = config();
        let mut clean = Runner::new(&ds, &clean_cfg, 0);
        let clean_report = fit(
            &mut clean,
            &ds,
            &FitConfig {
                max_epochs: 4,
                patience: None,
                ..FitConfig::default()
            },
        )
        .unwrap();

        let faulty_cfg = ExperimentConfig {
            fault_plan: Some(FaultPlan {
                // Auto planning picks K=1 here, so step == epoch: poison
                // epoch 2's only micro-batch.
                nan_loss_steps: vec![2],
                ..FaultPlan::default()
            }),
            ..config()
        };
        let mut faulty = Runner::new(&ds, &faulty_cfg, 0);
        let report = fit(
            &mut faulty,
            &ds,
            &FitConfig {
                max_epochs: 4,
                patience: None,
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.recovery.anomaly_rollbacks(), 1);
        assert_eq!(report.recovery.injected_faults(), 1);
        assert!(!report.recovery.anomaly_aborted());
        assert!(report.loss_history.iter().all(|l| l.is_finite()));
        assert_eq!(report.history[2].anomaly_rollbacks, 1);
        // The injection fired once and was rolled back; every loss matches
        // the never-faulted run bit for bit.
        for (a, b) in clean_report.loss_history.iter().zip(&report.loss_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(param_bits(&clean), param_bits(&faulty));
    }

    #[test]
    fn exhausted_anomaly_budget_aborts_the_run() {
        use crate::recovery::RetryPolicy;
        use betty_device::FaultPlan;
        let ds = dataset();
        let cfg = ExperimentConfig {
            fault_plan: Some(FaultPlan {
                nan_loss_steps: vec![1],
                ..FaultPlan::default()
            }),
            retry: RetryPolicy {
                max_anomaly_retries: 0,
                ..RetryPolicy::default()
            },
            ..config()
        };
        let mut runner = Runner::new(&ds, &cfg, 0);
        let mut log = RecoveryLog::new();
        let err = fit_with_log(
            &mut runner,
            &ds,
            &FitConfig {
                max_epochs: 4,
                patience: None,
                ..FitConfig::default()
            },
            &mut log,
        )
        .unwrap_err();
        assert!(
            matches!(err, RunError::Anomaly { rollbacks: 0, .. }),
            "{err:?}"
        );
        assert!(log.anomaly_aborted());
        assert_eq!(log.anomaly_rollbacks(), 0);
    }

    #[test]
    fn schedule_is_applied() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let schedule = StepDecay {
            step_epochs: 2,
            gamma: 0.5,
        };
        let report = fit(
            &mut runner,
            &ds,
            &FitConfig {
                max_epochs: 4,
                patience: None,
                schedule: Some(&schedule),
                base_lr: 1e-2,
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.epochs_run, 4);
        assert!(report.history.iter().all(|e| e.loss.is_finite()));
    }
}

//! High-level training loop with validation-based early stopping.

use betty_data::Dataset;
use betty_nn::LrSchedule;

use crate::recovery::RecoveryLog;
use crate::runner::{RunError, Runner};
use crate::stats::EpochStats;
use crate::strategy::StrategyKind;

/// Configuration of [`fit`].
pub struct FitConfig<'a> {
    /// Partitioning strategy for every epoch.
    pub strategy: StrategyKind,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Stop after this many epochs without validation improvement
    /// (`None` disables early stopping).
    pub patience: Option<usize>,
    /// Optional learning-rate schedule applied per epoch.
    pub schedule: Option<&'a dyn LrSchedule>,
    /// Base learning rate the schedule scales (ignored without a
    /// schedule).
    pub base_lr: f32,
}

impl Default for FitConfig<'_> {
    fn default() -> Self {
        Self {
            strategy: StrategyKind::Betty,
            max_epochs: 100,
            patience: Some(10),
            schedule: None,
            base_lr: 3e-3,
        }
    }
}

impl std::fmt::Debug for FitConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitConfig")
            .field("strategy", &self.strategy)
            .field("max_epochs", &self.max_epochs)
            .field("patience", &self.patience)
            .field("has_schedule", &self.schedule.is_some())
            .finish()
    }
}

/// Result of a [`fit`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Epochs actually trained.
    pub epochs_run: usize,
    /// Best validation accuracy observed.
    pub best_val_accuracy: f64,
    /// Epoch index of the best validation accuracy.
    pub best_epoch: usize,
    /// Whether early stopping triggered before `max_epochs`.
    pub early_stopped: bool,
    /// Per-epoch training stats.
    pub history: Vec<EpochStats>,
    /// Injected faults and recovery actions observed across the run
    /// (empty when nothing faulted).
    pub recovery: RecoveryLog,
}

/// Trains with memory-aware Betty partitioning until `max_epochs` or
/// validation patience runs out; evaluates on `dataset.val_idx` each epoch.
///
/// Each epoch runs with checkpointed OOM recovery
/// ([`Runner::train_epoch_auto_recovering`]): mid-step OOMs — genuine or
/// injected by the config's fault plan — roll the model, optimizer and
/// RNG back to the epoch-start snapshot and retry with an escalated
/// plan, up to the config's retry budget. The returned report's
/// [`recovery`](FitReport::recovery) log records everything that
/// happened.
///
/// Note: early stopping monitors accuracy only — the *returned* model is
/// the final one (checkpoint the best epoch externally via
/// [`betty_nn::save_checkpoint`] if needed).
///
/// # Errors
///
/// Propagates planning/training failures ([`RunError`]), including
/// [`RunError::RetryExhausted`] when recovery ran out of retries.
pub fn fit(runner: &mut Runner, dataset: &Dataset, config: &FitConfig<'_>) -> Result<FitReport, RunError> {
    let mut recovery = RecoveryLog::new();
    fit_with_log(runner, dataset, config, &mut recovery).map(|mut report| {
        report.recovery = recovery;
        report
    })
}

/// Like [`fit`], but recording faults and recovery actions into a
/// caller-owned log — on failure the log survives with everything
/// recorded up to the fatal error, so callers (e.g. the CLI) can print
/// a recovery summary alongside the error.
///
/// The returned report's own [`recovery`](FitReport::recovery) field is
/// left empty; `log` is the authoritative record.
///
/// # Errors
///
/// Propagates planning/training failures ([`RunError`]).
pub fn fit_with_log(
    runner: &mut Runner,
    dataset: &Dataset,
    config: &FitConfig<'_>,
    log: &mut RecoveryLog,
) -> Result<FitReport, RunError> {
    let mut best_val = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;
    let mut since_best = 0usize;
    let mut history = Vec::new();
    let mut early_stopped = false;
    for epoch in 0..config.max_epochs {
        if let Some(schedule) = config.schedule {
            runner.set_learning_rate(schedule.lr_at(config.base_lr, epoch));
        }
        log.set_epoch(epoch);
        let (stats, _k) = runner.train_epoch_auto_recovering(dataset, config.strategy, log)?;
        history.push(stats);
        let val = runner.evaluate(dataset, &dataset.val_idx);
        if val > best_val {
            best_val = val;
            best_epoch = epoch;
            since_best = 0;
        } else {
            since_best += 1;
            if let Some(patience) = config.patience {
                if since_best >= patience {
                    early_stopped = true;
                    break;
                }
            }
        }
    }
    Ok(FitReport {
        epochs_run: history.len(),
        best_val_accuracy: best_val,
        best_epoch,
        early_stopped,
        history,
        recovery: RecoveryLog::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use betty_data::DatasetSpec;
    use betty_device::gib;
    use betty_nn::{AggregatorSpec, StepDecay};

    fn dataset() -> Dataset {
        DatasetSpec::cora()
            .scaled(0.08)
            .with_feature_dim(12)
            .generate(3)
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig {
            fanouts: vec![4, 6],
            hidden_dim: 12,
            aggregator: AggregatorSpec::Mean,
            dropout: 0.0,
            learning_rate: 1e-2,
            capacity_bytes: gib(4),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn fit_trains_and_reports() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let report = fit(
            &mut runner,
            &ds,
            &FitConfig {
                max_epochs: 8,
                patience: None,
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.epochs_run, 8);
        assert!(!report.early_stopped);
        assert!(report.best_val_accuracy > 0.0);
        assert!(report.history.last().unwrap().loss < report.history[0].loss);
    }

    #[test]
    fn early_stopping_triggers_with_zero_patience() {
        // Patience 0: stop at the first epoch that fails to improve.
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let report = fit(
            &mut runner,
            &ds,
            &FitConfig {
                max_epochs: 50,
                patience: Some(0),
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert!(report.epochs_run < 50, "must stop early");
        assert!(report.early_stopped);
        assert!(report.best_epoch < report.epochs_run);
    }

    #[test]
    fn schedule_is_applied() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let schedule = StepDecay {
            step_epochs: 2,
            gamma: 0.5,
        };
        let report = fit(
            &mut runner,
            &ds,
            &FitConfig {
                max_epochs: 4,
                patience: None,
                schedule: Some(&schedule),
                base_lr: 1e-2,
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.epochs_run, 4);
        assert!(report.history.iter().all(|e| e.loss.is_finite()));
    }
}

//! Simulated multi-accelerator training — the paper's stated future work
//! ("we plan to extend Betty to multi-GPU training to speed up the
//! training process", §7).
//!
//! Micro-batches are data-parallel by construction: each is self-contained
//! and gradients sum across them. With `D` devices, the scheduler assigns
//! micro-batches to devices (longest-processing-time-first over estimated
//! work), every device accumulates its queue locally, and one ring
//! all-reduce combines gradients before the optimizer step — which is
//! *exactly* the gradient the single-device run computes, so convergence
//! is untouched.
//!
//! Numerics execute for real on the shared model; the multi-device aspect
//! is simulated by attributing each micro-batch's compute/transfer time and
//! peak memory to its assigned device and taking the slowest device as the
//! epoch's wall time.

use crate::stats::{EpochStats, StepStats};

/// Configuration of the simulated device group.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceGroup {
    /// Number of accelerators.
    pub num_devices: usize,
    /// Sustained all-reduce link bandwidth in bytes/second (NVLink-ish
    /// default: 50 GB/s).
    pub allreduce_bandwidth: f64,
}

impl DeviceGroup {
    /// A group of `num_devices` with the default interconnect.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0`.
    pub fn new(num_devices: usize) -> Self {
        assert!(num_devices > 0, "at least one device required");
        Self {
            num_devices,
            allreduce_bandwidth: 50.0e9,
        }
    }

    /// Ring all-reduce time for `bytes` of gradients: each rank moves
    /// `2 (D − 1) / D` of the payload.
    pub fn allreduce_sec(&self, bytes: usize) -> f64 {
        if self.num_devices == 1 {
            return 0.0;
        }
        let d = self.num_devices as f64;
        2.0 * (d - 1.0) / d * bytes as f64 / self.allreduce_bandwidth
    }
}

/// Outcome of one multi-device epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDeviceEpoch {
    /// Aggregate over all micro-batches (losses, totals — device-agnostic).
    pub combined: EpochStats,
    /// Per-device aggregates (compute/transfer time, peak memory).
    pub per_device: Vec<EpochStats>,
    /// Which device each micro-batch ran on.
    pub assignment: Vec<usize>,
    /// Simulated gradient all-reduce seconds.
    pub allreduce_sec: f64,
}

impl MultiDeviceEpoch {
    /// Epoch wall-clock: the slowest device plus gradient synchronization.
    pub fn wall_sec(&self) -> f64 {
        self.per_device
            .iter()
            .map(EpochStats::total_sec)
            .fold(0.0, f64::max)
            + self.allreduce_sec
    }

    /// Speed-up versus running every micro-batch on one device.
    pub fn speedup_vs_serial(&self) -> f64 {
        let serial = self.combined.total_sec();
        let wall = self.wall_sec();
        if wall == 0.0 {
            1.0
        } else {
            serial / wall
        }
    }

    /// Largest per-device peak bytes (each device needs this much memory).
    pub fn max_device_peak(&self) -> usize {
        self.per_device
            .iter()
            .map(|d| d.max_peak_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Longest-processing-time-first assignment of jobs (by `work`) onto
/// `num_devices` queues; returns a device index per job.
///
/// # Panics
///
/// Panics if `num_devices == 0`.
pub fn lpt_assignment(work: &[f64], num_devices: usize) -> Vec<usize> {
    assert!(num_devices > 0, "at least one device required");
    let mut order: Vec<usize> = (0..work.len()).collect();
    order.sort_by(|&a, &b| work[b].total_cmp(&work[a]));
    let mut load = vec![0.0f64; num_devices];
    let mut assignment = vec![0usize; work.len()];
    for job in order {
        let device = (0..num_devices)
            .min_by(|&a, &b| load[a].total_cmp(&load[b]))
            .expect("num_devices > 0");
        assignment[job] = device;
        load[device] += work[job];
    }
    assignment
}

/// Folds per-step stats into per-device epoch aggregates.
pub(crate) fn fold_by_device(
    steps: &[StepStats],
    assignment: &[usize],
    num_devices: usize,
) -> Vec<EpochStats> {
    let mut per_device = vec![EpochStats::default(); num_devices];
    for (step, &device) in steps.iter().zip(assignment) {
        per_device[device].absorb(step);
    }
    per_device
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_balances_loads() {
        let work = [10.0, 9.0, 8.0, 1.0, 1.0, 1.0];
        let assignment = lpt_assignment(&work, 3);
        let mut loads = [0.0f64; 3];
        for (job, &d) in assignment.iter().enumerate() {
            loads[d] += work[job];
        }
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min <= 1.0, "{loads:?}");
    }

    #[test]
    fn lpt_single_device_takes_all() {
        let assignment = lpt_assignment(&[3.0, 1.0], 1);
        assert_eq!(assignment, vec![0, 0]);
    }

    #[test]
    fn allreduce_cost_model() {
        let one = DeviceGroup::new(1);
        assert_eq!(one.allreduce_sec(1 << 20), 0.0);
        let four = DeviceGroup::new(4);
        let t = four.allreduce_sec(50_000_000_000); // 50 GB at 50 GB/s
        assert!((t - 1.5).abs() < 1e-9, "2·3/4 of a second-sized payload");
        let two = DeviceGroup::new(2);
        assert!(two.allreduce_sec(1000) < four.allreduce_sec(1000) + 1e-12);
    }

    #[test]
    fn wall_time_is_slowest_device_plus_sync() {
        let mk = |sec: f64| {
            let mut e = EpochStats::default();
            e.absorb(&StepStats {
                loss: 0.0,
                compute_sec: sec,
                transfer_sec: 0.0,
                peak_bytes: 100,
                input_nodes: 1,
                total_src_nodes: 1,
            });
            e
        };
        let epoch = MultiDeviceEpoch {
            combined: mk(3.0),
            per_device: vec![mk(2.0), mk(1.0)],
            assignment: vec![0, 1],
            allreduce_sec: 0.5,
        };
        assert!((epoch.wall_sec() - 2.5).abs() < 1e-12);
        assert!((epoch.speedup_vs_serial() - 3.0 / 2.5).abs() < 1e-12);
        assert_eq!(epoch.max_device_peak(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        lpt_assignment(&[1.0], 0);
    }
}

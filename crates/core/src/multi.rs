//! Simulated multi-accelerator training — the paper's stated future work
//! ("we plan to extend Betty to multi-GPU training to speed up the
//! training process", §7).
//!
//! Micro-batches are data-parallel by construction: each is self-contained
//! and gradients sum across them. With `D` devices, the scheduler assigns
//! micro-batches to devices (longest-processing-time-first over estimated
//! work), every device accumulates its queue locally, and one ring
//! all-reduce combines gradients before the optimizer step — which is
//! *exactly* the gradient the single-device run computes, so convergence
//! is untouched.
//!
//! Numerics execute for real on the shared model; the multi-device aspect
//! is simulated by attributing each micro-batch's compute/transfer time and
//! peak memory to its assigned device and taking the slowest device as the
//! epoch's wall time.
//!
//! # Elasticity
//!
//! The group survives device-level faults ([`betty_device::FaultPlan`]'s
//! `device_fail_steps`, `straggler_factors`, link stalls): each device
//! carries a [`DeviceHealth`] state, a lost device's unfinished
//! micro-batches are LPT re-packed onto survivors, and the ring
//! all-reduce is rebuilt over the remaining ranks with seeded-jitter
//! exponential backoff on transient link stalls. Because numerics are
//! centralized and failover only changes *scheduling and timing
//! attribution*, losses and parameters are bit-identical with and
//! without injected failures — the headline guarantee, proven by test.

use std::fmt;

use betty_device::LinkFaultInjector;

use crate::stats::{EpochStats, StepStats};

/// Per-device health in the elastic group's state machine.
///
/// Transitions: `Healthy → Degraded` when the straggler detector flags
/// the device (it keeps serving); `Healthy/Degraded → Failed` when a
/// scheduled device fault fires or the all-reduce retry budget runs out
/// with the device holding the timed-out link. Failed devices rejoin at
/// the next epoch boundary (repair model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Serving at expected speed.
    Healthy,
    /// Flagged as a straggler: still serving, but slow.
    Degraded,
    /// Declared lost for the rest of the epoch.
    Failed,
}

impl DeviceHealth {
    /// Stable lowercase name.
    pub const fn name(&self) -> &'static str {
        match self {
            DeviceHealth::Healthy => "healthy",
            DeviceHealth::Degraded => "degraded",
            DeviceHealth::Failed => "failed",
        }
    }
}

impl fmt::Display for DeviceHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the simulated device group.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceGroup {
    /// Number of accelerators.
    pub num_devices: usize,
    /// Sustained all-reduce link bandwidth in bytes/second (NVLink-ish
    /// default: 50 GB/s).
    pub allreduce_bandwidth: f64,
    /// Heartbeat timeout for one all-reduce round: an injected stall at
    /// or above this declares the round timed out and triggers a
    /// backoff retry (default 100 ms).
    pub allreduce_timeout_sec: f64,
    /// Timed-out sync rounds retried (with exponential backoff) before
    /// a rank is declared lost (default 3).
    pub max_device_retries: usize,
    /// A device whose attributed seconds per unit of work exceed this
    /// multiple of the group median is flagged `Degraded` (default 1.5).
    pub straggler_threshold: f64,
    /// Base delay of the exponential backoff between sync retries;
    /// attempt `i` waits `base · 2^(i−1) · (1 + jitter)` with seeded
    /// jitter in `[0, 1)` (default 50 ms).
    pub backoff_base_sec: f64,
}

impl DeviceGroup {
    /// A group of `num_devices` with the default interconnect and
    /// elasticity knobs.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0`.
    pub fn new(num_devices: usize) -> Self {
        assert!(num_devices > 0, "at least one device required");
        Self {
            num_devices,
            allreduce_bandwidth: 50.0e9,
            allreduce_timeout_sec: 0.1,
            max_device_retries: 3,
            straggler_threshold: 1.5,
            backoff_base_sec: 0.05,
        }
    }

    /// Ring all-reduce time for `bytes` of gradients over the *current*
    /// ring: each of `live_ranks` ranks moves `2 (R − 1) / R` of the
    /// payload. One survivor needs no synchronization at all, so
    /// `live_ranks <= 1` costs zero — degraded rings get cheaper as
    /// ranks drop out.
    pub fn allreduce_sec(&self, bytes: usize, live_ranks: usize) -> f64 {
        if live_ranks <= 1 {
            return 0.0;
        }
        let r = live_ranks as f64;
        2.0 * (r - 1.0) / r * bytes as f64 / self.allreduce_bandwidth
    }
}

/// All devices of the group failed — no survivor was left to absorb
/// unfinished work, so the epoch cannot complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevicesExhausted {
    /// Devices that had been declared lost when the group ran dry.
    pub lost: usize,
}

impl fmt::Display for DevicesExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "all devices exhausted: {} lost, no survivors to migrate work to",
            self.lost
        )
    }
}

impl std::error::Error for DevicesExhausted {}

/// One device loss and the work migration it forced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failover {
    /// The device that was lost.
    pub device: usize,
    /// Micro-batches it completed before failing (their host-staged
    /// gradient contributions survive; see DESIGN.md).
    pub completed_steps: usize,
    /// Micro-batch indices migrated onto survivors.
    pub migrated: Vec<usize>,
    /// Ranks remaining after this loss.
    pub live_ranks: usize,
}

/// Deterministic pre-run simulation of an epoch's schedule under
/// scheduled device failures: who runs what, who dies, what migrates.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticSchedule {
    /// The fault-free LPT assignment (device per micro-batch).
    pub initial_assignment: Vec<usize>,
    /// The post-failover assignment actually charged for timing.
    pub assignment: Vec<usize>,
    /// Health per device after all scheduled failures.
    pub health: Vec<DeviceHealth>,
    /// Every device loss, in the order it was processed.
    pub failovers: Vec<Failover>,
}

impl ElasticSchedule {
    /// Ranks still alive after the scheduled failures.
    pub fn live_ranks(&self) -> usize {
        self.health
            .iter()
            .filter(|h| **h != DeviceHealth::Failed)
            .count()
    }
}

/// Simulates the epoch schedule under `device_fail_steps`: starts from
/// the LPT assignment over `work`, applies each scheduled failure in
/// deterministic `(step, device)` order (only the earliest failure per
/// device matters — the device is already gone for later ones), and LPT
/// re-packs each dead device's unfinished queue onto the survivors.
///
/// Failures are interpreted as "device `d` dies after completing `step`
/// micro-batches of its own queue", which is time-free and therefore
/// exactly replayable. Entries whose device index is out of range are
/// ignored (callers validate with
/// [`betty_device::FaultPlan::validate_for_devices`] first).
///
/// # Errors
///
/// [`DevicesExhausted`] when a failure leaves unfinished work and no
/// surviving device.
pub fn simulate_elastic_schedule(
    work: &[f64],
    num_devices: usize,
    device_fail_steps: &[(usize, usize)],
) -> Result<ElasticSchedule, DevicesExhausted> {
    let initial_assignment = lpt_assignment(work, num_devices);
    let mut assignment = initial_assignment.clone();
    let mut health = vec![DeviceHealth::Healthy; num_devices];
    let mut failovers = Vec::new();

    // Per-device queues in plan order.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); num_devices];
    for (job, &device) in assignment.iter().enumerate() {
        queues[device].push(job);
    }

    // Earliest scheduled failure per (in-range) device, processed in
    // (step, device) order so runs are replayable.
    let mut first_failure: Vec<(usize, usize)> = Vec::new(); // (step, device)
    for &(device, step) in device_fail_steps {
        if device >= num_devices {
            continue;
        }
        match first_failure.iter_mut().find(|(_, d)| *d == device) {
            Some(entry) if step < entry.0 => entry.0 = step,
            Some(_) => {}
            None => first_failure.push((step, device)),
        }
    }
    first_failure.sort_unstable();

    for (step, device) in first_failure {
        let completed = step.min(queues[device].len());
        let unfinished: Vec<usize> = queues[device].split_off(completed);
        health[device] = DeviceHealth::Failed;
        let survivors: Vec<usize> = (0..num_devices)
            .filter(|&d| health[d] != DeviceHealth::Failed)
            .collect();
        if survivors.is_empty() {
            return Err(DevicesExhausted {
                lost: num_devices,
            });
        }
        // LPT re-pack over the survivors' *current* total load.
        let mut load: Vec<f64> = survivors
            .iter()
            .map(|&d| queues[d].iter().map(|&j| work[j]).sum())
            .collect();
        let mut order = unfinished.clone();
        order.sort_by(|&a, &b| work[b].total_cmp(&work[a]));
        for job in order {
            let slot = (0..survivors.len())
                .min_by(|&a, &b| load[a].total_cmp(&load[b]))
                .expect("survivors is non-empty");
            let target = survivors[slot];
            assignment[job] = target;
            queues[target].push(job);
            load[slot] += work[job];
        }
        failovers.push(Failover {
            device,
            completed_steps: completed,
            migrated: unfinished,
            live_ranks: survivors.len(),
        });
    }

    Ok(ElasticSchedule {
        initial_assignment,
        assignment,
        health,
        failovers,
    })
}

/// Flags devices whose attributed seconds per unit of assigned work
/// exceed `threshold ×` the median ratio across working devices.
/// Returns `(device, slowdown-vs-median)` pairs in device order; never
/// flags when fewer than two devices did work (no peer to compare to).
pub(crate) fn detect_stragglers(
    per_device: &[EpochStats],
    work_per_device: &[f64],
    threshold: f64,
) -> Vec<(usize, f64)> {
    let mut ratios: Vec<(usize, f64)> = per_device
        .iter()
        .zip(work_per_device)
        .enumerate()
        .filter(|(_, (stats, &work))| work > 0.0 && stats.num_steps > 0)
        .map(|(d, (stats, &work))| (d, stats.total_sec() / work))
        .collect();
    if ratios.len() < 2 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    if median <= 0.0 {
        return Vec::new();
    }
    ratios.retain(|&(_, r)| r > threshold * median);
    ratios
        .into_iter()
        .map(|(d, r)| (d, r / median))
        .collect()
}

/// One timed-out sync round and its backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SyncRetry {
    pub attempt: usize,
    pub stall_sec: f64,
    pub backoff_sec: f64,
}

/// Outcome of the simulated end-of-epoch ring all-reduce.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct SyncOutcome {
    /// Total simulated seconds: sync payload plus stalls, timeouts, and
    /// backoffs.
    pub total_sec: f64,
    /// Payload seconds of the final, successful ring (what
    /// `MultiDeviceEpoch::allreduce_sec` reports).
    pub final_ring_sec: f64,
    /// Every timed-out round, in order.
    pub retries: Vec<SyncRetry>,
    /// Ranks declared lost at the sync (retry budget exhausted), in
    /// loss order.
    pub lost_ranks: Vec<usize>,
    /// `(live_ranks, payload_sec)` after each sync-time ring rebuild.
    pub rebuilt: Vec<(usize, f64)>,
}

/// Simulates the gradient all-reduce over `live` rank ids with seeded
/// link stalls: a stall below the group timeout just lengthens the
/// round; a stall at/above it times the round out and is retried after
/// seeded-jitter exponential backoff. When the retry budget runs out
/// the highest surviving rank (the modelled owner of the dead link) is
/// popped from `live` and the ring is rebuilt one rank smaller — a lone
/// survivor needs no sync, so this always terminates.
pub(crate) fn simulate_allreduce(
    group: &DeviceGroup,
    grad_bytes: usize,
    live: &mut Vec<usize>,
    mut link: Option<&mut LinkFaultInjector>,
) -> SyncOutcome {
    let mut out = SyncOutcome::default();
    loop {
        if live.len() <= 1 {
            out.final_ring_sec = 0.0;
            return out;
        }
        let round_sec = group.allreduce_sec(grad_bytes, live.len());
        let mut attempt = 0usize;
        while attempt <= group.max_device_retries {
            match link.as_mut().and_then(|l| l.check_round()) {
                Some(stall) if stall >= group.allreduce_timeout_sec => {
                    attempt += 1;
                    let jitter = link.as_mut().map_or(0.0, |l| l.backoff_jitter());
                    let backoff =
                        group.backoff_base_sec * 2f64.powi(attempt as i32 - 1) * (1.0 + jitter);
                    out.total_sec += group.allreduce_timeout_sec + backoff;
                    out.retries.push(SyncRetry {
                        attempt,
                        stall_sec: stall,
                        backoff_sec: backoff,
                    });
                }
                stall => {
                    out.total_sec += round_sec + stall.unwrap_or(0.0);
                    out.final_ring_sec = round_sec;
                    return out;
                }
            }
        }
        // Retry budget exhausted: blame the highest surviving rank and
        // rebuild the ring without it.
        let lost = live.pop().expect("len > 1 checked above");
        out.lost_ranks.push(lost);
        out.rebuilt
            .push((live.len(), group.allreduce_sec(grad_bytes, live.len())));
    }
}

/// Outcome of one multi-device epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDeviceEpoch {
    /// Aggregate over all micro-batches (losses, totals — device-agnostic).
    pub combined: EpochStats,
    /// Per-device aggregates (compute/transfer time, peak memory).
    pub per_device: Vec<EpochStats>,
    /// Which device each micro-batch ran on (post-failover).
    pub assignment: Vec<usize>,
    /// Simulated gradient all-reduce seconds (payload of the final
    /// surviving ring; retry/backoff time is in `sync_overhead_sec`).
    pub allreduce_sec: f64,
    /// Health per device at epoch end (all `Healthy` on the
    /// non-elastic path).
    pub health: Vec<DeviceHealth>,
    /// Ranks alive at epoch end.
    pub live_ranks: usize,
    /// Stalls, timeouts, and backoff waits paid at the sync on top of
    /// `allreduce_sec`.
    pub sync_overhead_sec: f64,
    /// Wall seconds the epoch would have taken with no faults injected
    /// (fault-free LPT schedule, full ring, no stalls) — the baseline
    /// for `failover_overhead_sec`.
    pub fault_free_wall_sec: f64,
}

impl MultiDeviceEpoch {
    /// Epoch wall-clock: the slowest device plus gradient
    /// synchronization (payload and any retry/backoff overhead).
    pub fn wall_sec(&self) -> f64 {
        self.per_device
            .iter()
            .map(EpochStats::total_sec)
            .fold(0.0, f64::max)
            + self.allreduce_sec
            + self.sync_overhead_sec
    }

    /// Extra wall seconds paid for surviving the injected faults:
    /// `wall_sec() − fault_free_wall_sec`, floored at zero. Zero on
    /// fault-free runs by construction.
    pub fn failover_overhead_sec(&self) -> f64 {
        (self.wall_sec() - self.fault_free_wall_sec).max(0.0)
    }

    /// Speed-up versus running every micro-batch on one device.
    pub fn speedup_vs_serial(&self) -> f64 {
        let serial = self.combined.total_sec();
        let wall = self.wall_sec();
        if wall == 0.0 {
            1.0
        } else {
            serial / wall
        }
    }

    /// Largest per-device peak bytes (each device needs this much memory).
    pub fn max_device_peak(&self) -> usize {
        self.per_device
            .iter()
            .map(|d| d.max_peak_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Longest-processing-time-first assignment of jobs (by `work`) onto
/// `num_devices` queues; returns a device index per job.
///
/// # Panics
///
/// Panics if `num_devices == 0`.
pub fn lpt_assignment(work: &[f64], num_devices: usize) -> Vec<usize> {
    assert!(num_devices > 0, "at least one device required");
    let mut order: Vec<usize> = (0..work.len()).collect();
    order.sort_by(|&a, &b| work[b].total_cmp(&work[a]));
    let mut load = vec![0.0f64; num_devices];
    let mut assignment = vec![0usize; work.len()];
    for job in order {
        let device = (0..num_devices)
            .min_by(|&a, &b| load[a].total_cmp(&load[b]))
            .expect("num_devices > 0");
        assignment[job] = device;
        load[device] += work[job];
    }
    assignment
}

/// Folds per-step stats into per-device epoch aggregates.
pub(crate) fn fold_by_device(
    steps: &[StepStats],
    assignment: &[usize],
    num_devices: usize,
) -> Vec<EpochStats> {
    fold_by_device_scaled(steps, assignment, num_devices, &[])
}

/// [`fold_by_device`] with per-device straggler slowdown factors
/// applied to each step's attributed compute and transfer seconds —
/// the injected fault model for "device d runs f× slower". Losses and
/// memory are untouched: stragglers are slow, not wrong.
pub(crate) fn fold_by_device_scaled(
    steps: &[StepStats],
    assignment: &[usize],
    num_devices: usize,
    straggler_factors: &[(usize, f64)],
) -> Vec<EpochStats> {
    let mut factor = vec![1.0f64; num_devices];
    for &(device, f) in straggler_factors {
        if device < num_devices {
            factor[device] = f;
        }
    }
    let mut per_device = vec![EpochStats::default(); num_devices];
    for (step, &device) in steps.iter().zip(assignment) {
        let mut scaled = *step;
        scaled.compute_sec *= factor[device];
        scaled.transfer_sec *= factor[device];
        per_device[device].absorb(&scaled);
    }
    per_device
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_balances_loads() {
        let work = [10.0, 9.0, 8.0, 1.0, 1.0, 1.0];
        let assignment = lpt_assignment(&work, 3);
        let mut loads = [0.0f64; 3];
        for (job, &d) in assignment.iter().enumerate() {
            loads[d] += work[job];
        }
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min <= 1.0, "{loads:?}");
    }

    #[test]
    fn lpt_single_device_takes_all() {
        let assignment = lpt_assignment(&[3.0, 1.0], 1);
        assert_eq!(assignment, vec![0, 0]);
    }

    #[test]
    fn allreduce_cost_model() {
        let one = DeviceGroup::new(1);
        assert_eq!(one.allreduce_sec(1 << 20, 1), 0.0);
        let four = DeviceGroup::new(4);
        let t = four.allreduce_sec(50_000_000_000, 4); // 50 GB at 50 GB/s
        assert!((t - 1.5).abs() < 1e-9, "2·3/4 of a second-sized payload");
        assert!(four.allreduce_sec(1000, 2) < four.allreduce_sec(1000, 4) + 1e-12);
        // A lone survivor has nobody to sync with, whatever the
        // configured group size (satellite: live-rank-aware cost).
        assert_eq!(four.allreduce_sec(1 << 30, 1), 0.0);
        assert_eq!(four.allreduce_sec(1 << 30, 0), 0.0);
    }

    #[test]
    fn wall_time_is_slowest_device_plus_sync() {
        let mk = |sec: f64| {
            let mut e = EpochStats::default();
            e.absorb(&StepStats {
                loss: 0.0,
                compute_sec: sec,
                transfer_sec: 0.0,
                peak_bytes: 100,
                input_nodes: 1,
                total_src_nodes: 1,
                ..StepStats::default()
            });
            e
        };
        let epoch = MultiDeviceEpoch {
            combined: mk(3.0),
            per_device: vec![mk(2.0), mk(1.0)],
            assignment: vec![0, 1],
            allreduce_sec: 0.5,
            health: vec![DeviceHealth::Healthy; 2],
            live_ranks: 2,
            sync_overhead_sec: 0.0,
            fault_free_wall_sec: 2.5,
        };
        assert!((epoch.wall_sec() - 2.5).abs() < 1e-12);
        assert!((epoch.speedup_vs_serial() - 3.0 / 2.5).abs() < 1e-12);
        assert_eq!(epoch.max_device_peak(), 100);
        assert_eq!(epoch.failover_overhead_sec(), 0.0);
    }

    #[test]
    fn elastic_schedule_migrates_unfinished_work_to_survivors() {
        // Four equal jobs on two devices: LPT gives each device two.
        let work = [1.0, 1.0, 1.0, 1.0];
        let schedule = simulate_elastic_schedule(&work, 2, &[(1, 1)]).unwrap();
        assert_eq!(schedule.initial_assignment.len(), 4);
        assert_eq!(schedule.failovers.len(), 1);
        let fo = &schedule.failovers[0];
        assert_eq!(fo.device, 1);
        assert_eq!(fo.completed_steps, 1, "device 1 finished one step first");
        assert_eq!(fo.migrated.len(), 1, "its second step migrates");
        assert_eq!(fo.live_ranks, 1);
        assert_eq!(schedule.health, vec![DeviceHealth::Healthy, DeviceHealth::Failed]);
        assert_eq!(schedule.live_ranks(), 1);
        // The migrated job is now charged to the survivor; completed
        // work stays attributed to the dead device.
        for &job in &fo.migrated {
            assert_eq!(schedule.assignment[job], 0);
        }
        let on_dead = schedule.assignment.iter().filter(|&&d| d == 1).count();
        assert_eq!(on_dead, 1, "only the completed step remains on device 1");
    }

    #[test]
    fn elastic_schedule_only_first_failure_per_device_counts() {
        let work = [1.0; 6];
        let a = simulate_elastic_schedule(&work, 3, &[(0, 1), (0, 0)]).unwrap();
        let b = simulate_elastic_schedule(&work, 3, &[(0, 0)]).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.failovers, b.failovers);
    }

    #[test]
    fn elastic_schedule_exhaustion_is_an_error() {
        let err = simulate_elastic_schedule(&[1.0, 1.0], 2, &[(0, 0), (1, 0)]).unwrap_err();
        assert_eq!(err.lost, 2);
        assert!(err.to_string().contains("all devices exhausted"));
    }

    #[test]
    fn straggler_detection_flags_slow_devices_only() {
        let mk = |sec: f64| {
            let mut e = EpochStats::default();
            e.absorb(&StepStats {
                loss: 0.0,
                compute_sec: sec,
                transfer_sec: 0.0,
                peak_bytes: 1,
                input_nodes: 1,
                total_src_nodes: 1,
                ..StepStats::default()
            });
            e
        };
        let per_device = vec![mk(1.0), mk(1.0), mk(4.0)];
        let work = vec![1.0, 1.0, 1.0];
        let flagged = detect_stragglers(&per_device, &work, 1.5);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].0, 2);
        assert!((flagged[0].1 - 4.0).abs() < 1e-9, "4× the median ratio");
        // A single working device has no peers to be slower than.
        assert!(detect_stragglers(&per_device[..1], &work[..1], 1.5).is_empty());
    }

    #[test]
    fn allreduce_simulation_without_faults_is_one_clean_round() {
        let group = DeviceGroup::new(4);
        let mut live = vec![0, 1, 2, 3];
        let out = simulate_allreduce(&group, 1 << 20, &mut live, None);
        assert_eq!(live.len(), 4);
        assert!(out.retries.is_empty());
        assert!(out.lost_ranks.is_empty());
        assert!((out.total_sec - group.allreduce_sec(1 << 20, 4)).abs() < 1e-15);
        assert_eq!(out.final_ring_sec, out.total_sec);
    }

    #[test]
    fn allreduce_simulation_sheds_highest_rank_when_retries_exhaust() {
        let mut group = DeviceGroup::new(3);
        group.max_device_retries = 1;
        group.allreduce_timeout_sec = 0.01;
        // Every round stalls for a full second: each ring times out,
        // retries once, then sheds its highest rank until one remains.
        let mut link = betty_device::FaultPlan {
            seed: 7,
            link_stall_rate: 1.0,
            link_stall_sec: 1.0,
            ..betty_device::FaultPlan::default()
        }
        .link_injector();
        let mut live = vec![0, 1, 2];
        let out = simulate_allreduce(&group, 1 << 20, &mut live, Some(&mut link));
        assert_eq!(live, vec![0], "rings shed ranks from the top");
        assert_eq!(out.lost_ranks, vec![2, 1]);
        assert_eq!(out.rebuilt.len(), 2);
        assert_eq!(out.rebuilt[1].1, 0.0, "final ring of one needs no sync");
        assert_eq!(out.retries.len(), 4, "2 attempts per 2 doomed rings");
        assert_eq!(out.final_ring_sec, 0.0);
        assert!(out.total_sec > 0.0, "timeouts and backoffs were charged");
        // Backoff grows exponentially between attempts of one ring.
        assert!(out.retries[1].backoff_sec > out.retries[0].backoff_sec);
    }

    #[test]
    fn scaled_fold_slows_only_the_straggler() {
        let step = StepStats {
            loss: 1.0,
            compute_sec: 1.0,
            transfer_sec: 0.5,
            peak_bytes: 10,
            input_nodes: 1,
            total_src_nodes: 1,
            ..StepStats::default()
        };
        let steps = vec![step, step];
        let folded = fold_by_device_scaled(&steps, &[0, 1], 2, &[(1, 3.0)]);
        assert!((folded[0].total_sec() - 1.5).abs() < 1e-12);
        assert!((folded[1].total_sec() - 4.5).abs() < 1e-12);
        assert_eq!(folded[1].max_peak_bytes, 10, "memory is not scaled");
        assert!((folded[1].loss - 1.0).abs() < 1e-12, "loss is not scaled");
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        lpt_assignment(&[1.0], 0);
    }
}

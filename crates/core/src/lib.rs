//! **Betty** — batch-level graph partitioning for large-scale GNN training.
//!
//! A from-scratch Rust reproduction of *Betty: Enabling Large-Scale GNN
//! Training with Batch-Level Graph Partitioning* (Yang, Zhang, Dong & Li,
//! ASPLOS 2023). Betty fits large GNN training batches onto a memory-
//! limited accelerator by splitting each multi-level bipartite batch into
//! `K` micro-batches, trained sequentially with gradient accumulation —
//! which is mathematically equivalent to full-batch training — and chooses
//! the split with two techniques:
//!
//! 1. **REG partitioning** ([`betty_partition::RegPartitioner`]): min-cut of
//!    the Redundancy-Embedded Graph, minimizing input nodes duplicated
//!    across micro-batches.
//! 2. **Memory-aware re-partitioning** ([`MemoryAwarePlanner`]): an
//!    analytical estimator predicts each micro-batch's peak memory and `K`
//!    grows until the largest micro-batch fits the device.
//!
//! The [`Trainer`] executes (micro-)batches on the real autograd engine
//! while charging every tensor to a simulated device
//! ([`betty_device::Device`]), so OOM behaviour, memory breakdowns and
//! redundancy-driven compute costs are all measurable.
//!
//! # Quickstart
//!
//! ```
//! use betty::{ExperimentConfig, ModelKind, StrategyKind};
//! use betty_data::DatasetSpec;
//! use betty_device::gib;
//! use betty_nn::AggregatorSpec;
//!
//! let dataset = DatasetSpec::cora().scaled(0.1).with_feature_dim(32).generate(0);
//! let config = ExperimentConfig {
//!     fanouts: vec![5, 10],
//!     hidden_dim: 16,
//!     aggregator: AggregatorSpec::Mean,
//!     model: ModelKind::GraphSage,
//!     capacity_bytes: gib(1),
//!     ..ExperimentConfig::default()
//! };
//! let mut runner = betty::Runner::new(&dataset, &config, 0);
//! let epoch = runner.train_epoch_betty(&dataset, StrategyKind::Betty, 2).unwrap();
//! assert!(epoch.loss.is_finite());
//! ```

#![deny(missing_docs)]

mod accounting;
mod config;
pub mod durable;
mod eval;
pub mod fit;
pub mod multi;
mod pipeline;
mod planner;
mod recovery;
mod runner;
mod stats;
mod strategy;
mod trainer;

pub use config::{ExperimentConfig, ModelKind};
pub use durable::{
    latest_checkpoint, latest_valid_checkpoint, load_checkpoint_state, CheckpointPlan,
    CheckpointResolution,
};
pub use eval::{accuracy, accuracy_full_graph, predict, predict_full_graph};
pub use fit::{fit, fit_with_log, FitConfig, FitReport};
pub use multi::{
    lpt_assignment, simulate_elastic_schedule, DeviceGroup, DeviceHealth, DevicesExhausted,
    ElasticSchedule, Failover, MultiDeviceEpoch,
};
pub use planner::{MemoryAwarePlanner, Plan, PlanError};
pub use recovery::{RecoveryEntry, RecoveryEvent, RecoveryLog, RetryPolicy};
pub use runner::{RunError, Runner, LSTM_TAPE_CONSTANT};
pub use stats::{EpochStats, StepStats};
pub use strategy::{build_strategy, StrategyKind};
pub use trainer::{AnomalyKind, StepPhase, TrainError, Trainer, TrainerSnapshot};

// Re-exported observability types (crate `betty-trace`), so trace
// consumers — CLI, benches, tests — need no direct dependency.
pub use betty_trace::{
    validate_jsonl, DriftRecord, FaultRecord, MemEvent, MemTimeline, PeakRecord, SpanKind,
    SpanRecord, TraceRecorder,
};

use betty_device::AggregatorKind;
use betty_nn::AggregatorSpec;

/// Maps the nn-crate aggregator spec onto the device-crate estimator kind.
pub fn aggregator_kind(spec: AggregatorSpec) -> AggregatorKind {
    match spec {
        AggregatorSpec::Mean => AggregatorKind::Mean,
        AggregatorSpec::Sum => AggregatorKind::Sum,
        AggregatorSpec::Pool => AggregatorKind::Pool,
        AggregatorSpec::Lstm => AggregatorKind::Lstm,
    }
}

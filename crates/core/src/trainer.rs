//! Micro-batch and mini-batch training execution (paper §4.2).

use std::fmt;
use std::time::Instant;

use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use betty_data::{Dataset, GatherStats};
use betty_device::{
    AllocationId, Device, FaultEvent, FaultPlan, MemoryCategory, OomError, TransferModel,
    BYTES_PER_VALUE,
};
use betty_graph::Batch;
use betty_nn::{Adam, GnnModel, Optimizer, Param, Session};
use betty_tensor::{DType, PoolStats, Reduction};
use betty_trace::{SpanKind, TraceRecorder};

use crate::accounting::{StepCharges, StepSizes};
use crate::stats::{EpochStats, StepStats};

/// Which part of a training step was executing when a failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPhase {
    /// Charging static tensors (parameters, optimizer state, blocks,
    /// input features, labels).
    StaticCharge,
    /// Staging the *next* micro-batch's host→device transfer (the
    /// double-buffered prefetch allocation).
    Prefetch,
    /// Charging forward activations (hidden outputs + aggregator
    /// workspace).
    Forward,
    /// Charging backward gradients.
    Backward,
}

impl fmt::Display for StepPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StepPhase::StaticCharge => "static charge",
            StepPhase::Prefetch => "prefetch staging",
            StepPhase::Forward => "forward",
            StepPhase::Backward => "backward",
        })
    }
}

/// What the numeric-anomaly sentinel detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// The micro-batch loss evaluated to NaN or ±Inf.
    NonFiniteLoss,
    /// A parameter gradient contained NaN or ±Inf after backward.
    NonFiniteGradient,
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AnomalyKind::NonFiniteLoss => "non-finite loss",
            AnomalyKind::NonFiniteGradient => "non-finite gradient",
        })
    }
}

/// Training failure.
///
/// Marked `#[non_exhaustive]`: variants may grow. Downstream crates
/// should prefer the [`TrainError::oom`] accessor or match with a
/// wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrainError {
    /// The simulated device ran out of memory mid-step — what Betty's
    /// memory-aware planning exists to prevent. Carries where the step
    /// failed so recovery can log and escalate precisely.
    StepOom {
        /// Global step index (monotone across the trainer's lifetime,
        /// including failed and retried steps).
        step: usize,
        /// The phase in which the allocation failed.
        phase: StepPhase,
        /// The underlying device error.
        source: OomError,
    },
    /// The numeric-anomaly sentinel caught a NaN/Inf loss or gradient.
    /// Accumulating past it would silently corrupt every later step
    /// (§4.2's gradient-sum equivalence assumes finite terms), so the
    /// step is aborted before the optimizer can consume the poison.
    NumericAnomaly {
        /// Global step index at which the anomaly was detected.
        step: usize,
        /// What was non-finite.
        kind: AnomalyKind,
        /// Whether the anomaly came from an armed
        /// [`FaultPlan::nan_loss_steps`] entry rather than genuine
        /// numeric divergence.
        injected: bool,
    },
    /// The out-of-core feature store failed mid-step in a way retry and
    /// parity repair could not absorb: transient I/O errors exhausted the
    /// retry budget, or more shards in a parity group are damaged than
    /// XOR parity can reconstruct. Carries the failing shard and byte
    /// offset end to end so the CLI message names the damaged file
    /// position. Not a capacity problem — the recovery loop aborts
    /// instead of shrinking micro-batches.
    Storage {
        /// Global step index at which the storage failure surfaced.
        step: usize,
        /// Index of the failing feature shard (0 when the failure is not
        /// shard-specific, e.g. a meta-file problem).
        shard: usize,
        /// Byte offset within the shard file where validation failed
        /// (0 when the failure has no meaningful position).
        offset: u64,
        /// Human-readable failure chain from the feature store.
        detail: String,
    },
}

impl TrainError {
    /// The underlying [`OomError`] for any OOM-class variant (`None` for
    /// numeric anomalies).
    pub fn oom(&self) -> Option<&OomError> {
        match self {
            TrainError::StepOom { source, .. } => Some(source),
            TrainError::NumericAnomaly { .. } | TrainError::Storage { .. } => None,
        }
    }

    /// Whether the failure was injected by an armed
    /// [`FaultPlan`] rather than a genuine capacity shortfall or
    /// numeric divergence.
    pub fn is_injected(&self) -> bool {
        match self {
            TrainError::StepOom { source, .. } => source.injected,
            TrainError::NumericAnomaly { injected, .. } => *injected,
            // A storage failure is terminal damage (or an exhausted retry
            // budget) regardless of whether chaos injection produced it.
            TrainError::Storage { .. } => false,
        }
    }
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::StepOom {
                step,
                phase,
                source,
            } => write!(f, "step {step} failed during {phase}: {source}"),
            TrainError::NumericAnomaly { step, kind, injected } => {
                let origin = if *injected { " (injected)" } else { "" };
                write!(f, "step {step} aborted: {kind}{origin}")
            }
            TrainError::Storage {
                step,
                shard,
                offset,
                detail,
            } => write!(
                f,
                "step {step}: feature shard {shard} failed at byte offset {offset}: {detail}"
            ),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::StepOom { source, .. } => Some(source),
            TrainError::NumericAnomaly { .. } | TrainError::Storage { .. } => None,
        }
    }
}

/// Lightweight in-memory checkpoint of everything training mutates:
/// parameter values (and gradients), optimizer moments, and the dropout
/// RNG. Restoring one onto the trainer it was taken from rewinds
/// training exactly — a retried epoch is bit-identical to one that
/// never failed.
#[derive(Debug, Clone)]
pub struct TrainerSnapshot {
    params: Vec<Param>,
    optimizer: Adam,
    rng: Pcg64Mcg,
}

impl TrainerSnapshot {
    /// Number of parameter tensors captured.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Host bytes held by the checkpoint (values + gradients), for
    /// overhead reporting.
    pub fn param_bytes(&self) -> usize {
        self.params
            .iter()
            .map(|p| p.len() * 2 * BYTES_PER_VALUE)
            .sum()
    }
}

/// A prefetched host→device transfer staged for the *next* micro-batch:
/// its bytes already occupy the device (under
/// [`MemoryCategory::PrefetchStaging`]) and only `exposed_sec` of its link
/// time remains on the critical path of the step that consumes it.
#[derive(Debug, Clone, Copy)]
struct StagedTransfer {
    alloc: AllocationId,
    /// Full simulated link seconds the staged transfer took.
    raw_sec: f64,
    /// The portion not hidden behind the staging step's compute.
    exposed_sec: f64,
}

/// How a step's loss feeds the gradient.
enum LossMode {
    /// Sum-reduced loss scaled by `1/effective_batch` — summing gradients
    /// over micro-batches then equals the full-batch mean gradient.
    MicroBatch {
        /// Total output nodes of the *effective* batch.
        effective_batch: usize,
    },
    /// Mean-reduced per batch (classic mini-batch SGD).
    MiniBatch,
}

/// Executes (micro-)batches on the autograd engine while charging every
/// accelerator-resident tensor to the simulated [`Device`].
pub struct Trainer {
    model: Box<dyn GnnModel>,
    optimizer: Adam,
    device: Device,
    transfer: TransferModel,
    /// Simulated NVMe-like link feature shards page in over. Separate
    /// from `transfer` so paged feature stores never perturb the PCIe
    /// link's counters or its armed fault-injector stream — dense and
    /// paged runs draw identical stall sequences on `transfer`.
    feature_link: TransferModel,
    rng: Pcg64Mcg,
    global_step: usize,
    trace: Option<TraceRecorder>,
    /// Persistent autograd workspace: with pooling on, each step resets the
    /// tape in place and rebuilds it from recycled buffers instead of
    /// reallocating the whole forward/backward state.
    session: Session,
    pooling: bool,
    /// Numeric-anomaly sentinel: when on (the default), a NaN/Inf loss or
    /// gradient aborts the step instead of corrupting the accumulation.
    sentinel: bool,
    /// Global steps whose loss is poisoned to NaN (armed from
    /// [`FaultPlan::nan_loss_steps`]); each entry fires once.
    nan_steps: std::collections::BTreeSet<usize>,
    /// NaN-injection events not yet drained into the recovery log.
    nan_events: Vec<FaultEvent>,
    /// Storage dtype for node features and forward activations
    /// ([`ExperimentConfig::precision`](crate::ExperimentConfig)): the
    /// tape quantizes non-leaf activations to this width and the device
    /// ledger charges features/hidden tensors at it.
    precision: DType,
}

impl fmt::Debug for Trainer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trainer")
            .field("device_capacity", &self.device.capacity())
            .field("params", &self.model.total_param_count())
            .finish()
    }
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(model: Box<dyn GnnModel>, learning_rate: f32, device: Device, seed: u64) -> Self {
        Self {
            model,
            optimizer: Adam::new(learning_rate),
            device,
            transfer: TransferModel::pcie3(),
            feature_link: TransferModel::nvme(),
            rng: Pcg64Mcg::seed_from_u64(seed),
            global_step: 0,
            trace: None,
            session: Session::new(),
            pooling: true,
            sentinel: true,
            nan_steps: std::collections::BTreeSet::new(),
            nan_events: Vec::new(),
            precision: DType::F32,
        }
    }

    /// Sets the storage precision for features and activations. Non-leaf
    /// tape values round through the 16-bit grid on every step from here
    /// on (compute still accumulates in f32), and the device ledger
    /// charges input features and per-layer tensors at the narrow width —
    /// exactly what a [`betty_device::MemoryEstimator`] configured with
    /// the same dtypes predicts.
    pub fn set_precision(&mut self, dtype: DType) {
        self.precision = dtype;
        self.session.graph.set_activation_dtype(dtype);
    }

    /// The active storage precision.
    pub fn precision(&self) -> DType {
        self.precision
    }

    /// Turns the numeric-anomaly sentinel on or off. With the sentinel
    /// off, a NaN/Inf loss propagates into the accumulated gradients and
    /// every subsequent update — the historical (silent-corruption)
    /// behaviour, kept as an escape hatch and for demonstrating what the
    /// sentinel prevents.
    pub fn set_sentinel(&mut self, on: bool) {
        self.sentinel = on;
    }

    /// Whether the numeric-anomaly sentinel is active.
    pub fn sentinel(&self) -> bool {
        self.sentinel
    }

    /// Turns the pooled tensor workspace on or off (`--no-pool` escape
    /// hatch). Pooling changes allocator traffic only: losses, gradients,
    /// parameters, and device accounting are bit-identical either way,
    /// because every pooled buffer is fully overwritten before it is read.
    pub fn set_pooling(&mut self, on: bool) {
        self.pooling = on;
        self.session.graph.set_pool_enabled(on);
    }

    /// Whether the pooled workspace is active.
    pub fn pooling(&self) -> bool {
        self.pooling
    }

    /// Cumulative workspace-pool counters (hits, misses, bytes recycled)
    /// since this trainer was created.
    pub fn pool_stats(&self) -> PoolStats {
        self.session.graph.pool_stats()
    }

    /// Starts trace recording: step spans, the device-memory timeline,
    /// and at-peak breakdowns are captured from here on. Tracing never
    /// changes the math — losses, gradients, and RNG consumption are
    /// bit-identical with tracing on or off (only extra bookkeeping runs,
    /// and none at all while disabled).
    pub fn enable_tracing(&mut self) {
        self.device.enable_timeline();
        let mut recorder = TraceRecorder::new();
        recorder.set_run_context(
            betty_tensor::Backend::current().name(),
            self.precision.name(),
        );
        self.trace = Some(recorder);
    }

    /// Stops trace recording, returning the recorder (with everything it
    /// captured) if tracing was enabled.
    pub fn disable_tracing(&mut self) -> Option<TraceRecorder> {
        self.device.disable_timeline();
        self.trace.take()
    }

    /// Whether trace recording is enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Mutable access to the active trace recorder, for callers that add
    /// their own spans (sampling, partitioning, planning, allreduce).
    pub fn trace_mut(&mut self) -> Option<&mut TraceRecorder> {
        self.trace.as_mut()
    }

    /// The model being trained.
    pub fn model(&self) -> &dyn GnnModel {
        self.model.as_ref()
    }

    /// Mutable model access (e.g. for evaluation helpers).
    pub fn model_mut(&mut self) -> &mut dyn GnnModel {
        self.model.as_mut()
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The transfer model, for bandwidth/latency inspection.
    pub fn transfer(&self) -> &TransferModel {
        &self.transfer
    }

    /// The feature page-in link model (NVMe-like), for inspection.
    pub fn feature_link(&self) -> &TransferModel {
        &self.feature_link
    }

    /// Updates the optimizer's learning rate (for
    /// [`betty_nn::schedule`] schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.optimizer.set_lr(lr);
    }

    /// Global step index the next [`Trainer::micro_batch_epoch`] step
    /// will use. Monotone across epochs and recovery retries — a failed
    /// step consumes its index, so a [`FaultPlan::oom_steps`] entry
    /// fires once per run, not once per retry.
    pub fn global_step(&self) -> usize {
        self.global_step
    }

    /// Overwrites the global step counter — used when resuming a durable
    /// checkpoint, so step-scheduled faults and trace step ids continue
    /// from where the killed run left off.
    pub fn set_global_step(&mut self, step: usize) {
        self.global_step = step;
    }

    /// Raw dropout-RNG state, for durable checkpoints.
    pub fn rng_state(&self) -> u128 {
        self.rng.state()
    }

    /// Restores the dropout RNG to a state captured by
    /// [`Trainer::rng_state`].
    pub fn set_rng_state(&mut self, state: u128) {
        self.rng = Pcg64Mcg::new(state);
    }

    /// Positional snapshot of the optimizer's moments and step counter,
    /// for durable checkpoints (see [`betty_nn::AdamState`]).
    pub fn export_optimizer_state(&self) -> betty_nn::AdamState {
        self.optimizer.export_state(&self.model.params())
    }

    /// Restores optimizer state exported by
    /// [`Trainer::export_optimizer_state`], re-keyed under this process's
    /// parameter ids.
    ///
    /// # Errors
    ///
    /// Returns a message if the entry count or any moment shape does not
    /// match the model (the optimizer is left unchanged).
    pub fn import_optimizer_state(&mut self, state: &betty_nn::AdamState) -> Result<(), String> {
        self.optimizer.import_state(&self.model.params(), state)
    }

    /// Captures an in-memory checkpoint of parameters, optimizer
    /// moments, and the dropout RNG (see [`TrainerSnapshot`]).
    pub fn snapshot(&self) -> TrainerSnapshot {
        TrainerSnapshot {
            params: self.model.params().into_iter().cloned().collect(),
            optimizer: self.optimizer.clone(),
            rng: self.rng.clone(),
        }
    }

    /// Restores a snapshot previously taken from this trainer. The
    /// cloned parameters keep their [`Param::id`]s, so the restored
    /// optimizer moments stay correctly keyed.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's parameter count differs from the
    /// model's (i.e. the snapshot came from a different model).
    pub fn restore(&mut self, snapshot: &TrainerSnapshot) {
        let mut params = self.model.params_mut();
        assert_eq!(
            params.len(),
            snapshot.params.len(),
            "snapshot does not match this trainer's model"
        );
        for (dst, src) in params.iter_mut().zip(&snapshot.params) {
            **dst = src.clone();
        }
        self.optimizer = snapshot.optimizer.clone();
        self.rng = snapshot.rng.clone();
    }

    /// Arms deterministic fault injection on the device (allocation
    /// faults), the transfer link (stalls), and the trainer itself
    /// (NaN-loss poisoning). Replaces any previously armed plan.
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        self.device.arm_faults(plan.alloc_injector());
        self.transfer.arm_faults(plan.transfer_injector());
        self.nan_steps = plan.nan_loss_steps.iter().copied().collect();
    }

    /// Disarms fault injection on the device, the transfer link, and the
    /// trainer's NaN-loss schedule.
    pub fn disarm_faults(&mut self) {
        self.device.disarm_faults();
        self.transfer.disarm_faults();
        self.nan_steps.clear();
    }

    /// Drains injected-fault events from the device, the transfer link,
    /// and the trainer's NaN-loss poisoner (allocation events first), for
    /// the recovery log. When tracing, each drained event is also
    /// forwarded into the trace stream as a fault record, so the JSONL
    /// export carries the injected faults alongside spans and timelines.
    pub fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        let mut events = self.device.drain_fault_events();
        events.extend(self.transfer.drain_fault_events());
        events.append(&mut self.nan_events);
        if let Some(tr) = self.trace.as_mut() {
            for event in &events {
                let (kind, detail) = match event {
                    FaultEvent::AllocFailure {
                        step, requested, ..
                    } => (
                        "alloc_failure",
                        format!("step {step}: {requested} bytes denied"),
                    ),
                    FaultEvent::TransferStall {
                        transfer_index,
                        stall_sec,
                    } => (
                        "transfer_stall",
                        format!("transfer {transfer_index}: +{stall_sec:.3}s"),
                    ),
                    FaultEvent::NanLoss { step } => {
                        ("nan_loss", format!("step {step}: loss poisoned"))
                    }
                    FaultEvent::DeviceFail {
                        device,
                        completed_steps,
                    } => (
                        "device_fail",
                        format!("device {device} after {completed_steps} steps"),
                    ),
                    FaultEvent::LinkStall { round, stall_sec } => {
                        ("link_stall", format!("round {round}: +{stall_sec:.3}s"))
                    }
                    FaultEvent::StorageIoError { shard, attempt } => (
                        "storage_io",
                        format!("shard {shard}: transient read error on attempt {attempt}"),
                    ),
                    FaultEvent::StorageStall { shard, stall_sec } => (
                        "storage_stall",
                        format!("shard {shard}: +{stall_sec:.3}s read stall"),
                    ),
                    FaultEvent::ShardCorrupted { shard, epoch } => (
                        "shard_corrupt",
                        format!("shard {shard}: payload byte flipped before epoch {epoch}"),
                    ),
                };
                tr.record_fault(kind, detail);
            }
        }
        events
    }

    /// Releases every outstanding device charge — post-failure cleanup
    /// before a recovery retry. The peak watermark is preserved so the
    /// aborted step stays visible in memory reports.
    pub fn release_device(&mut self) {
        self.device.free_all();
    }

    /// Charges a partition-ahead staging residency to the device ledger
    /// at the epoch boundary and immediately releases it, returning the
    /// bytes actually charged.
    ///
    /// The charge is a feasibility probe plus timeline bookkeeping: it
    /// makes the pipeline's in-flight plan bytes visible to Eq. 5-style
    /// accounting (and to the memory timeline as the `plan ahead`
    /// category) without persisting into step execution — the first
    /// step's `free_all → reset_peak` boundary wipes it before any step
    /// peak is measured, so `max_peak_bytes` stays bit-identical to a
    /// non-pipelined run. Fault injection is bypassed
    /// ([`betty_device::Device::alloc_unfaulted`]) so an armed
    /// `alloc_failure_rate` stream stays aligned with `--plan-ahead 0`.
    /// A charge that alone exceeds capacity is skipped (returns 0)
    /// rather than failing the epoch — the pipeline's depth governor,
    /// not the trainer, is the backpressure mechanism.
    pub fn charge_plan_ahead(&mut self, bytes: usize) -> usize {
        if bytes == 0 {
            return 0;
        }
        match self.device.alloc_unfaulted(bytes, MemoryCategory::PlanAhead) {
            Ok(id) => {
                self.device.free(id);
                bytes
            }
            Err(_) => 0,
        }
    }

    /// Folds this epoch's workspace-pool activity (counter delta since
    /// `before`) into the epoch stats and, when tracing, the trace stream.
    fn finish_epoch_pool_stats(&mut self, epoch: &mut EpochStats, before: PoolStats) {
        let delta = self.session.graph.pool_stats().delta_since(&before);
        epoch.pool_hits = delta.hits;
        epoch.pool_misses = delta.misses;
        epoch.pool_bytes_recycled = delta.bytes_recycled;
        if let Some(tr) = self.trace.as_mut() {
            tr.record_alloc(self.global_step, delta.hits, delta.misses, delta.bytes_recycled);
            if epoch.feature_hits + epoch.feature_misses > 0 {
                tr.record_featurestore(
                    self.global_step,
                    epoch.feature_hits,
                    epoch.feature_misses,
                    epoch.feature_pages_in,
                    epoch.feature_page_in_bytes,
                );
            }
        }
    }

    /// Returns the persistent tape to its empty state (recycling its
    /// buffers when pooling, or rebuilding it fresh when not), releasing
    /// every `Arc` clone it holds of parameter values. Must run before an
    /// optimizer step: a live tape would force copy-on-write of each
    /// parameter the step touches.
    fn release_tape(&mut self) {
        if self.pooling {
            self.session.reset();
        } else {
            self.session = Session::new();
            self.session.graph.set_pool_enabled(false);
            self.session.graph.set_activation_dtype(self.precision);
        }
    }

    /// Trains one *effective batch* as a sequence of micro-batches with
    /// gradient accumulation: a single optimizer update at the end
    /// (Fig. 6's micro-batch workflow).
    ///
    /// Passing a single batch is exactly full-batch training.
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if any micro-batch exceeds device capacity; the
    /// model is left unstepped in that case.
    pub fn micro_batch_epoch(
        &mut self,
        dataset: &Dataset,
        micro_batches: &[Batch],
    ) -> Result<EpochStats, TrainError> {
        self.micro_batch_epoch_with_steps(dataset, micro_batches)
            .map(|(epoch, _)| epoch)
    }

    /// Like [`Trainer::micro_batch_epoch`], additionally returning the
    /// per-micro-batch [`StepStats`] (in `micro_batches` order, skipping
    /// empty ones) — what the multi-device scheduler folds per device.
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if any micro-batch exceeds device capacity.
    pub fn micro_batch_epoch_with_steps(
        &mut self,
        dataset: &Dataset,
        micro_batches: &[Batch],
    ) -> Result<(EpochStats, Vec<StepStats>), TrainError> {
        let effective_batch: usize = micro_batches
            .iter()
            .map(|b| b.output_nodes().len())
            .sum();
        let mut epoch = EpochStats::default();
        let mut steps = Vec::with_capacity(micro_batches.len());
        let pool_before = self.session.graph.pool_stats();
        self.model.for_each_param_mut(&mut |p| p.zero_grad());
        for mb in micro_batches {
            if mb.output_nodes().is_empty() {
                continue;
            }
            let step = self.run_step(dataset, mb, &LossMode::MicroBatch { effective_batch })?;
            epoch.absorb(&step);
            steps.push(step);
        }
        // No gradient was computed when every micro-batch was empty;
        // stepping Adam anyway would advance its timestep and push stale
        // momentum into the parameters.
        if !steps.is_empty() {
            self.release_tape();
            self.optimizer.step(&mut self.model.params_mut());
        }
        self.finish_epoch_pool_stats(&mut epoch, pool_before);
        Ok((epoch, steps))
    }

    /// Like [`Trainer::micro_batch_epoch`], but with double-buffered
    /// prefetch: while micro-batch `i` computes, micro-batch `i + 1`'s
    /// host→device transfer is staged on the device (charged under
    /// [`MemoryCategory::PrefetchStaging`]), so only the transfer time
    /// not covered by compute stays on the critical path. Losses, gradients,
    /// and RNG consumption are bit-identical to the non-prefetched epoch —
    /// only the timing and the device-memory schedule differ. The hidden
    /// link time is reported in [`EpochStats::prefetch_overlap_sec`].
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if any micro-batch (including its staging
    /// buffer) exceeds device capacity; every charge, staged or not, is
    /// released before returning.
    pub fn micro_batch_epoch_prefetched(
        &mut self,
        dataset: &Dataset,
        micro_batches: &[Batch],
    ) -> Result<EpochStats, TrainError> {
        self.micro_batch_epoch_prefetched_with_steps(dataset, micro_batches)
            .map(|(epoch, _)| epoch)
    }

    /// Like [`Trainer::micro_batch_epoch_prefetched`], additionally
    /// returning the per-micro-batch [`StepStats`] (in `micro_batches`
    /// order, skipping empty ones).
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if any micro-batch exceeds device capacity.
    pub fn micro_batch_epoch_prefetched_with_steps(
        &mut self,
        dataset: &Dataset,
        micro_batches: &[Batch],
    ) -> Result<(EpochStats, Vec<StepStats>), TrainError> {
        let effective_batch: usize = micro_batches
            .iter()
            .map(|b| b.output_nodes().len())
            .sum();
        let active: Vec<&Batch> = micro_batches
            .iter()
            .filter(|b| !b.output_nodes().is_empty())
            .collect();
        let mode = LossMode::MicroBatch { effective_batch };
        let mut epoch = EpochStats::default();
        let mut steps = Vec::with_capacity(active.len());
        let pool_before = self.session.graph.pool_stats();
        self.model.for_each_param_mut(&mut |p| p.zero_grad());
        let mut staged: Option<StagedTransfer> = None;
        for (i, mb) in active.iter().enumerate() {
            let stage_next = active.get(i + 1).copied();
            let (step, staged_out) =
                self.run_step_inner(dataset, mb, &mode, staged.take(), stage_next)?;
            if let Some(s) = &staged_out {
                epoch.prefetch_overlap_sec += s.raw_sec - s.exposed_sec;
            }
            staged = staged_out;
            epoch.absorb(&step);
            steps.push(step);
        }
        // Same guard as the non-prefetched path: an all-empty epoch must
        // not advance the optimizer.
        if !steps.is_empty() {
            self.release_tape();
            self.optimizer.step(&mut self.model.params_mut());
        }
        self.finish_epoch_pool_stats(&mut epoch, pool_before);
        Ok((epoch, steps))
    }

    /// Classic mini-batch training: an optimizer update after every batch
    /// (the §3.3 baseline whose convergence differs from full batch).
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if a batch exceeds device capacity.
    pub fn mini_batch_epoch(
        &mut self,
        dataset: &Dataset,
        batches: &[Batch],
    ) -> Result<EpochStats, TrainError> {
        let mut epoch = EpochStats::default();
        let pool_before = self.session.graph.pool_stats();
        for batch in batches {
            if batch.output_nodes().is_empty() {
                continue;
            }
            self.model.for_each_param_mut(&mut |p| p.zero_grad());
            let step = self.run_step(dataset, batch, &LossMode::MiniBatch)?;
            self.release_tape();
            self.optimizer.step(&mut self.model.params_mut());
            epoch.absorb(&step);
        }
        // Report the mean of per-batch mean losses.
        if epoch.num_steps > 0 {
            epoch.loss /= epoch.num_steps as f64;
        }
        self.finish_epoch_pool_stats(&mut epoch, pool_before);
        Ok(epoch)
    }

    /// Executes one batch forward/backward, charging the device.
    fn run_step(
        &mut self,
        dataset: &Dataset,
        batch: &Batch,
        mode: &LossMode,
    ) -> Result<StepStats, TrainError> {
        self.run_step_inner(dataset, batch, mode, None, None)
            .map(|(stats, _)| stats)
    }

    /// Executes one batch forward/backward, charging the device.
    ///
    /// `prefetch_in` is this batch's already-staged transfer: its bytes are
    /// on the device and only the exposed fraction of its link time is
    /// still owed. `stage_next` asks the step to stage the following
    /// micro-batch's transfer while this one computes; the returned
    /// [`StagedTransfer`] (if any) stays allocated across the step
    /// boundary and must be fed to the next call as `prefetch_in`. On
    /// error every charge — including any staging buffer — is released,
    /// so the device ledger always reads zero after a failure.
    fn run_step_inner(
        &mut self,
        dataset: &Dataset,
        batch: &Batch,
        mode: &LossMode,
        prefetch_in: Option<StagedTransfer>,
        stage_next: Option<&Batch>,
    ) -> Result<(StepStats, Option<StagedTransfer>), TrainError> {
        let step = self.global_step;
        self.global_step += 1;
        let oom = |phase: StepPhase| move |source: OomError| TrainError::StepOom { step, phase, source };
        let storage = |e: betty_data::FeatureStoreError| match e {
            betty_data::FeatureStoreError::Shard {
                shard,
                offset,
                detail,
            } => TrainError::Storage {
                step,
                shard,
                offset,
                detail,
            },
            other => TrainError::Storage {
                step,
                shard: 0,
                offset: 0,
                detail: other.to_string(),
            },
        };

        let in_dim = dataset.feature_dim();
        let param_values = self.model.total_param_count();
        let opt_values = param_values * self.optimizer.state_values_per_param();
        let sizes = StepSizes::for_batch(batch, in_dim, param_values, opt_values, self.precision)
            .with_feature_cache(dataset.features.cache_reservation_bytes());

        // This batch's staged copy is re-charged below under the regular
        // static categories, so the staging buffer is dropped first.
        if let Some(p) = &prefetch_in {
            self.device.free(p.alloc);
        }
        self.device.free_all();
        self.device.reset_peak();
        self.device.begin_step(step);
        let mut charges = StepCharges::charge_static(&mut self.device, &sizes)
            .map_err(oom(StepPhase::StaticCharge))?;
        // Only the transfer time the previous step's compute did not cover
        // is still owed when the batch was prefetched.
        let transfer_sec = match &prefetch_in {
            Some(p) => p.exposed_sec,
            None => self.transfer.transfer(sizes.transfer_bytes()),
        };
        if let Some(tr) = self.trace.as_mut() {
            // The transfer is simulated, so the span carries the modelled
            // link seconds still owed on this step's critical path.
            let at = tr.now_sec();
            tr.record_span(SpanKind::Transfer, Some(step), at, transfer_sec);
        }
        // Stage the next micro-batch's transfer while this one computes.
        // Its bytes share the device with this step's working set for the
        // whole step, so the charge lands before the forward pass —
        // matching the planner's `prefetch_staging` term in the peak
        // estimate (Eq. 5).
        let mut feature_stats = GatherStats::default();
        let mut staged_out = match stage_next {
            Some(next) => {
                let next_sizes =
                    StepSizes::for_batch(next, in_dim, param_values, opt_values, self.precision);
                let staged_bytes = next_sizes.transfer_bytes();
                let alloc = match self
                    .device
                    .alloc(staged_bytes, MemoryCategory::PrefetchStaging)
                {
                    Ok(id) => id,
                    Err(e) => {
                        charges.release(&mut self.device);
                        return Err(oom(StepPhase::Prefetch)(e));
                    }
                };
                // Page the next micro-batch's feature shards in alongside
                // the staged PCIe bytes: their NVMe seconds join `raw_sec`
                // and are hidden behind this step's compute like the rest
                // of the staged transfer, so the consuming step's gather
                // hits the warm cache.
                let next_idx: Vec<usize> =
                    next.input_nodes().iter().map(|&v| v as usize).collect();
                let warm = match dataset.features.try_prewarm(&next_idx) {
                    Ok(warm) => warm,
                    Err(e) => {
                        self.device.free(alloc);
                        charges.release(&mut self.device);
                        return Err(storage(e));
                    }
                };
                feature_stats.absorb(&warm);
                let raw_sec = self.transfer.transfer(staged_bytes)
                    + self.feature_link.transfer(warm.bytes_in as usize);
                Some(StagedTransfer {
                    alloc,
                    raw_sec,
                    exposed_sec: raw_sec,
                })
            }
            None => None,
        };

        // Reuse the persistent workspace: reset drains the previous step's
        // tape into the buffer pool, so this step's identically-shaped
        // tensors are served without touching the allocator. With pooling
        // off, a fresh session reproduces the historical allocate-per-step
        // behaviour exactly.
        self.release_tape();

        // Host-side feature gather for the micro-batch's input nodes,
        // staged in a pooled scratch buffer (fully overwritten).
        let mut input_idx = self.session.graph.take_indices();
        input_idx.extend(batch.input_nodes().iter().map(|&v| v as usize));
        let mut input_feats = self
            .session
            .graph
            .take_scratch(&[input_idx.len(), dataset.features.cols()]);
        let gather_stats = match dataset
            .features
            .try_gather_into(&input_idx, input_feats.data_mut())
        {
            Ok(stats) => stats,
            Err(e) => {
                self.session.graph.recycle_indices(input_idx);
                if let Some(s) = staged_out.take() {
                    self.device.free(s.alloc);
                }
                charges.release(&mut self.device);
                return Err(storage(e));
            }
        };
        // Shards the prefetcher did not (or could not) keep warm page in
        // on the critical path, over the NVMe-like feature link. Dense
        // stores and warm caches read zero bytes, which the link models
        // as free.
        let page_in_sec = self.feature_link.transfer(gather_stats.bytes_in as usize);
        feature_stats.absorb(&gather_stats);
        self.session.graph.recycle_indices(input_idx);
        let input_bytes = input_feats.size_bytes();
        let mut targets = self.session.graph.take_indices();
        targets.extend(
            batch
                .output_nodes()
                .iter()
                .map(|&v| dataset.labels[v as usize]),
        );

        // Forward.
        let started = Instant::now();
        let sess = &mut self.session;
        let x = sess.graph.leaf(input_feats);
        let logits = self
            .model
            .forward(sess, batch.blocks(), x, true, &mut self.rng);
        let loss_var = match mode {
            LossMode::MicroBatch { effective_batch } => {
                let sum = sess.graph.cross_entropy(logits, &targets, Reduction::Sum);
                sess.graph.scale(sum, 1.0 / *effective_batch as f32)
            }
            LossMode::MiniBatch => sess.graph.cross_entropy(logits, &targets, Reduction::Mean),
        };
        sess.graph.recycle_indices(targets);
        // Injected NaN fault: poison the loss *before* backward, so the
        // gradients genuinely carry the corruption the sentinel must
        // catch (with the sentinel off, the poison reaches the optimizer
        // — the silent-corruption failure mode this run demonstrates).
        let injected_nan = self.nan_steps.remove(&step);
        let loss_var = if injected_nan {
            self.nan_events.push(FaultEvent::NanLoss { step });
            sess.graph.scale(loss_var, f32::NAN)
        } else {
            loss_var
        };
        // Forward/backward boundary, read only when tracing so the
        // untraced path does zero extra clock work.
        let forward_sec = self
            .trace
            .as_ref()
            .map(|_| started.elapsed().as_secs_f64());

        // Charge forward activations: named per-layer outputs count as
        // hidden, the rest of the tape as aggregator workspace.
        let hidden_bytes: usize = batch
            .blocks()
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let out_dim = if i + 1 == self.model.num_layers() {
                    self.model.num_classes()
                } else {
                    self.model.hidden_dim()
                };
                b.num_dst() * out_dim * self.precision.bytes_per_value()
            })
            .sum();
        let tape_bytes = sess.activation_bytes();
        let aggregator_bytes = tape_bytes
            .saturating_sub(input_bytes)
            .saturating_sub(hidden_bytes);
        if let Err(e) = charges.charge_forward(&mut self.device, hidden_bytes, aggregator_bytes) {
            if let Some(s) = staged_out.take() {
                self.device.free(s.alloc);
            }
            charges.release(&mut self.device);
            return Err(oom(StepPhase::Forward)(e));
        }

        // Backward.
        if let Err(e) = charges.charge_backward(&mut self.device, sizes.params) {
            if let Some(s) = staged_out.take() {
                self.device.free(s.alloc);
            }
            charges.release(&mut self.device);
            return Err(oom(StepPhase::Backward)(e));
        }
        sess.backward(loss_var, self.model.as_mut());
        let compute_sec = started.elapsed().as_secs_f64();
        let loss = sess.graph.value(loss_var).item() as f64;

        // Numeric-anomaly sentinel: a NaN/Inf loss or gradient must not
        // reach the optimizer — one poisoned micro-batch would corrupt
        // the whole accumulated gradient and every later update. The
        // caller rolls back to its last good snapshot.
        if self.sentinel {
            let anomaly = if !loss.is_finite() {
                Some(AnomalyKind::NonFiniteLoss)
            } else if self
                .model
                .params()
                .iter()
                .any(|p| p.grad().data().iter().any(|g| !g.is_finite()))
            {
                Some(AnomalyKind::NonFiniteGradient)
            } else {
                None
            };
            if let Some(kind) = anomaly {
                if let Some(tr) = self.trace.as_mut() {
                    tr.record_anomaly(step, kind.to_string(), injected_nan);
                }
                if let Some(s) = staged_out.take() {
                    self.device.free(s.alloc);
                }
                charges.release(&mut self.device);
                return Err(TrainError::NumericAnomaly {
                    step,
                    kind,
                    injected: injected_nan,
                });
            }
        }

        // Whatever part of the staged transfer this step's compute covered
        // is hidden; only the remainder reaches the next step's critical
        // path.
        if let Some(s) = staged_out.as_mut() {
            s.exposed_sec = (s.raw_sec - compute_sec).max(0.0);
        }

        let peak_bytes = self.device.peak_bytes();
        if let Some(tr) = self.trace.as_mut() {
            let end = tr.now_sec();
            let fwd = forward_sec.unwrap_or(0.0);
            let start = end - compute_sec;
            tr.record_span(SpanKind::Forward, Some(step), start, fwd);
            tr.record_span(SpanKind::Backward, Some(step), start + fwd, compute_sec - fwd);
            // The at-peak snapshot survives frees, so it is still valid
            // here, right before the step's charges are released.
            let breakdown = self
                .device
                .peak_breakdown()
                .into_iter()
                .map(|(c, b)| (c.name(), b))
                .collect();
            tr.record_peak(step, peak_bytes, breakdown);
        }
        charges.release(&mut self.device);
        if self.trace.is_some() {
            let events = self.device.drain_timeline_events();
            if let Some(tr) = self.trace.as_mut() {
                tr.record_mem_events(step, events);
            }
        }
        Ok((
            StepStats {
                loss,
                compute_sec,
                transfer_sec,
                peak_bytes,
                input_nodes: batch.input_nodes().len(),
                total_src_nodes: batch.total_src_nodes(),
                feature_hits: feature_stats.hits,
                feature_misses: feature_stats.misses,
                feature_pages_in: feature_stats.pages_in,
                feature_page_in_bytes: feature_stats.bytes_in,
                page_in_sec,
                io_retries: feature_stats.io_retries,
                shards_repaired: feature_stats.shards_repaired,
                // Repair cost is modelled, never slept: backoff seconds
                // accumulated by the retry path plus the link time of the
                // parity/peer reads that fed reconstruction. Charged via
                // the *pure* `time_for` so repairs can never perturb the
                // feature link's counters or its fault-injector stream.
                repair_sec: feature_stats.backoff_sec
                    + self
                        .feature_link
                        .time_for(feature_stats.repair_bytes as usize),
            },
            staged_out,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_data::DatasetSpec;
    use betty_graph::sample_batch;
    use betty_nn::{AggregatorSpec, GraphSage};
    use betty_partition::{OutputPartitioner, RegPartitioner};

    fn dataset() -> Dataset {
        DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(12)
            .generate(1)
    }

    fn model(ds: &Dataset, seed: u64) -> Box<dyn GnnModel> {
        let mut rng = Pcg64Mcg::seed_from_u64(seed);
        Box::new(GraphSage::new(
            ds.feature_dim(),
            16,
            ds.num_classes,
            2,
            AggregatorSpec::Mean,
            0.0,
            &mut rng,
        ))
    }

    fn full_batch(ds: &Dataset, seed: u64) -> Batch {
        let mut rng = Pcg64Mcg::seed_from_u64(seed);
        sample_batch(&ds.graph, &ds.train_idx, &[5, 10], &mut rng)
    }

    #[test]
    fn full_batch_epoch_trains() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::unbounded(), 3);
        let first = t
            .micro_batch_epoch(&ds, std::slice::from_ref(&batch))
            .unwrap();
        assert!(first.loss.is_finite());
        assert!(first.max_peak_bytes > 0);
        let mut last = first;
        for _ in 0..10 {
            last = t
                .micro_batch_epoch(&ds, std::slice::from_ref(&batch))
                .unwrap();
        }
        assert!(last.loss < first.loss, "{} -> {}", first.loss, last.loss);
    }

    #[test]
    fn micro_batch_loss_sums_to_full_batch_loss() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let parts = RegPartitioner::new(0).split_outputs(&batch, 4);
        let micros: Vec<Batch> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect();

        let mut t_full = Trainer::new(model(&ds, 7), 0.01, Device::unbounded(), 3);
        let full = t_full
            .micro_batch_epoch(&ds, std::slice::from_ref(&batch))
            .unwrap();
        let mut t_micro = Trainer::new(model(&ds, 7), 0.01, Device::unbounded(), 3);
        let micro = t_micro.micro_batch_epoch(&ds, &micros).unwrap();
        // Same initial weights (same seed) → identical effective loss.
        assert!(
            (full.loss - micro.loss).abs() < 1e-4,
            "full {} vs micro {}",
            full.loss,
            micro.loss
        );
    }

    #[test]
    fn micro_batching_reduces_peak_memory() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let parts = RegPartitioner::new(0).split_outputs(&batch, 8);
        let micros: Vec<Batch> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect();
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::unbounded(), 3);
        let full = t
            .micro_batch_epoch(&ds, std::slice::from_ref(&batch))
            .unwrap();
        let micro = t.micro_batch_epoch(&ds, &micros).unwrap();
        assert!(
            micro.max_peak_bytes < full.max_peak_bytes,
            "micro {} vs full {}",
            micro.max_peak_bytes,
            full.max_peak_bytes
        );
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::new(10_000), 3);
        match t.micro_batch_epoch(&ds, std::slice::from_ref(&batch)) {
            Err(TrainError::StepOom {
                step,
                phase,
                source,
            }) => {
                assert_eq!(step, 0);
                assert_eq!(phase, StepPhase::StaticCharge);
                assert_eq!(source.capacity, 10_000);
                assert!(!source.injected);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        // No partial charges linger after the failure.
        assert_eq!(t.device().current_bytes(), 0);
    }

    #[test]
    fn global_step_advances_even_across_failures() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::new(10_000), 3);
        assert_eq!(t.global_step(), 0);
        assert!(t.micro_batch_epoch(&ds, std::slice::from_ref(&batch)).is_err());
        assert_eq!(t.global_step(), 1, "a failed step still consumes its index");
    }

    #[test]
    fn snapshot_restore_replays_bit_identically() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        // Dropout > 0 so the restored RNG actually matters.
        let mut rng = Pcg64Mcg::seed_from_u64(11);
        let m = Box::new(GraphSage::new(
            ds.feature_dim(),
            16,
            ds.num_classes,
            2,
            AggregatorSpec::Mean,
            0.3,
            &mut rng,
        ));
        let mut t = Trainer::new(m, 0.01, Device::unbounded(), 3);
        // Advance so the optimizer has non-trivial moments.
        t.micro_batch_epoch(&ds, std::slice::from_ref(&batch)).unwrap();
        let snap = t.snapshot();
        assert!(snap.num_params() > 0);
        assert!(snap.param_bytes() > 0);
        let a = t
            .micro_batch_epoch(&ds, std::slice::from_ref(&batch))
            .unwrap();
        t.restore(&snap);
        let b = t
            .micro_batch_epoch(&ds, std::slice::from_ref(&batch))
            .unwrap();
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "restore must rewind exactly");
    }

    #[test]
    fn injected_fault_is_marked_and_drains_events() {
        use betty_device::FaultPlan;
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::new(usize::MAX / 2), 3);
        t.arm_faults(&FaultPlan {
            oom_steps: vec![0],
            ..FaultPlan::default()
        });
        let err = t
            .micro_batch_epoch(&ds, std::slice::from_ref(&batch))
            .unwrap_err();
        assert!(err.is_injected());
        assert!(err.oom().is_some());
        let events = t.drain_fault_events();
        assert_eq!(events.len(), 1);
        assert!(t.drain_fault_events().is_empty());
        // The very next epoch (step 1) passes: capacity was never short.
        t.micro_batch_epoch(&ds, std::slice::from_ref(&batch))
            .unwrap();
        t.disarm_faults();
    }

    fn micros_of(batch: &Batch, k: usize) -> Vec<Batch> {
        RegPartitioner::new(0)
            .split_outputs(batch, k)
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect()
    }

    #[test]
    fn prefetched_epoch_losses_bit_identical_to_plain() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let micros = micros_of(&batch, 4);
        assert!(micros.len() >= 2, "need real double buffering");

        // Dropout > 0 so RNG consumption must line up step for step.
        let dropout_model = |seed: u64| -> Box<dyn GnnModel> {
            let mut rng = Pcg64Mcg::seed_from_u64(seed);
            Box::new(GraphSage::new(
                ds.feature_dim(),
                16,
                ds.num_classes,
                2,
                AggregatorSpec::Mean,
                0.3,
                &mut rng,
            ))
        };
        let mut plain = Trainer::new(dropout_model(7), 0.01, Device::unbounded(), 3);
        let mut pre = Trainer::new(dropout_model(7), 0.01, Device::unbounded(), 3);
        for epoch in 0..3 {
            let a = plain.micro_batch_epoch(&ds, &micros).unwrap();
            let b = pre.micro_batch_epoch_prefetched(&ds, &micros).unwrap();
            assert_eq!(
                a.loss.to_bits(),
                b.loss.to_bits(),
                "epoch {epoch}: prefetch must not change the math"
            );
            assert!(b.prefetch_overlap_sec >= 0.0);
            // The link moved the same bytes either way: exposed + hidden
            // transfer time matches the serial epoch's transfer time.
            assert!(
                (a.transfer_sec - (b.transfer_sec + b.prefetch_overlap_sec)).abs() < 1e-9,
                "epoch {epoch}: {} vs {} + {}",
                a.transfer_sec,
                b.transfer_sec,
                b.prefetch_overlap_sec
            );
        }
        assert_eq!(pre.device().current_bytes(), 0, "no staging buffer lingers");
    }

    #[test]
    fn prefetch_staging_raises_peak_and_is_recharged_next_step() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let micros = micros_of(&batch, 4);
        assert!(micros.len() >= 2);
        let mut plain = Trainer::new(model(&ds, 0), 0.01, Device::unbounded(), 3);
        let (_, plain_steps) = plain.micro_batch_epoch_with_steps(&ds, &micros).unwrap();
        let mut pre = Trainer::new(model(&ds, 0), 0.01, Device::unbounded(), 3);
        let (_, pre_steps) = pre
            .micro_batch_epoch_prefetched_with_steps(&ds, &micros)
            .unwrap();
        // Every step that stages its successor pays for the staged bytes.
        for i in 0..micros.len() - 1 {
            let param_values = pre.model.total_param_count();
            let opt_values = param_values * pre.optimizer.state_values_per_param();
            let staged = StepSizes::for_batch(&micros[i + 1], ds.feature_dim(), param_values, opt_values, DType::F32)
                .transfer_bytes();
            assert_eq!(
                pre_steps[i].peak_bytes,
                plain_steps[i].peak_bytes + staged,
                "step {i} peak must include its successor's staged transfer"
            );
        }
        // The last step stages nothing.
        let last = micros.len() - 1;
        assert_eq!(pre_steps[last].peak_bytes, plain_steps[last].peak_bytes);
    }

    #[test]
    fn oom_mid_prefetch_reports_prefetch_phase_and_drains_ledger() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let micros = micros_of(&batch, 2);
        assert!(micros.len() >= 2);
        // Capacity that admits micro-batch 0's statics but not micro-batch
        // 1's staging buffer on top of them: a genuine capacity OOM in the
        // prefetch phase, before any forward work.
        let probe = Trainer::new(model(&ds, 0), 0.01, Device::unbounded(), 3);
        let param_values = probe.model.total_param_count();
        let opt_values = param_values * probe.optimizer.state_values_per_param();
        let sizes0 = StepSizes::for_batch(&micros[0], ds.feature_dim(), param_values, opt_values, DType::F32);
        let statics0 = sizes0.params
            + sizes0.optimizer_states
            + sizes0.blocks
            + sizes0.input_features
            + sizes0.labels;
        let staged1 = StepSizes::for_batch(&micros[1], ds.feature_dim(), param_values, opt_values, DType::F32)
            .transfer_bytes();
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::new(statics0 + staged1 - 1), 3);
        match t.micro_batch_epoch_prefetched(&ds, &micros) {
            Err(TrainError::StepOom { step, phase, source }) => {
                assert_eq!(step, 0);
                assert_eq!(phase, StepPhase::Prefetch);
                assert_eq!(source.requested, staged1);
                assert!(!source.injected);
            }
            other => panic!("expected prefetch-phase OOM, got {other:?}"),
        }
        assert_eq!(
            t.device().current_bytes(),
            0,
            "an OOM mid-prefetch must drop the staged charge with the rest"
        );

        // With exactly enough room for statics + staging, the forward
        // charge fails instead — while the staging buffer is live, so the
        // error path must free it too.
        let mut t2 = Trainer::new(model(&ds, 0), 0.01, Device::new(statics0 + staged1), 3);
        match t2.micro_batch_epoch_prefetched(&ds, &micros) {
            Err(TrainError::StepOom { phase, .. }) => assert_eq!(phase, StepPhase::Forward),
            other => panic!("expected forward-phase OOM, got {other:?}"),
        }
        assert_eq!(
            t2.device().current_bytes(),
            0,
            "a forward OOM with a live staging buffer must free it"
        );
    }

    fn param_bits(t: &Trainer) -> Vec<u32> {
        t.model()
            .params()
            .iter()
            .flat_map(|p| p.value().data().iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn all_empty_epoch_leaves_params_bit_identical() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::unbounded(), 3);
        // Train once so Adam holds non-zero moments — the bug applied
        // stale momentum, which only shows once moments exist.
        t.micro_batch_epoch(&ds, std::slice::from_ref(&batch)).unwrap();
        let before = param_bits(&t);

        // Zero micro-batches, and micro-batches whose output sets are all
        // empty, both mean no gradient: the optimizer must not step.
        let stats = t.micro_batch_epoch(&ds, &[]).unwrap();
        assert_eq!(stats.num_steps, 0);
        let empty = batch.restrict(&[]);
        t.micro_batch_epoch(&ds, std::slice::from_ref(&empty)).unwrap();
        t.micro_batch_epoch_prefetched(&ds, &[]).unwrap();
        t.micro_batch_epoch_prefetched(&ds, std::slice::from_ref(&empty))
            .unwrap();
        assert_eq!(
            before,
            param_bits(&t),
            "an all-empty epoch must leave parameters untouched"
        );

        // A real epoch afterwards still updates them.
        t.micro_batch_epoch(&ds, std::slice::from_ref(&batch)).unwrap();
        assert_ne!(before, param_bits(&t));
    }

    #[test]
    fn tracing_is_bit_identical_and_records_all_phases() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let micros = micros_of(&batch, 4);
        let mut plain = Trainer::new(model(&ds, 7), 0.01, Device::unbounded(), 3);
        let mut traced = Trainer::new(model(&ds, 7), 0.01, Device::unbounded(), 3);
        traced.enable_tracing();
        assert!(traced.tracing_enabled());
        for _ in 0..2 {
            let a = plain.micro_batch_epoch(&ds, &micros).unwrap();
            let b = traced.micro_batch_epoch(&ds, &micros).unwrap();
            assert_eq!(a.loss.to_bits(), b.loss.to_bits());
            assert_eq!(a.num_steps, b.num_steps);
            assert_eq!(a.max_peak_bytes, b.max_peak_bytes);
            assert_eq!(a.transfer_sec.to_bits(), b.transfer_sec.to_bits());
        }
        let trace = traced.disable_tracing().expect("recorder comes back");
        assert!(!traced.tracing_enabled());
        let steps = 2 * micros.len();
        let count_kind = |k: SpanKind| trace.spans().iter().filter(|s| s.kind == k).count();
        assert_eq!(count_kind(SpanKind::Transfer), steps);
        assert_eq!(count_kind(SpanKind::Forward), steps);
        assert_eq!(count_kind(SpanKind::Backward), steps);
        assert_eq!(trace.peaks().len(), steps);
        assert!(!trace.mem_events().is_empty());
        // Each step's peak snapshot decomposes its recorded peak exactly.
        for p in trace.peaks() {
            let sum: usize = p.breakdown.iter().map(|(_, b)| b).sum();
            assert_eq!(sum, p.peak_bytes);
        }
        // Step ids are monotone within the trace.
        let ids: Vec<usize> = trace.peaks().iter().map(|p| p.step).collect();
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn mini_batch_epoch_steps_per_batch() {
        let ds = dataset();
        let mut rng = Pcg64Mcg::seed_from_u64(5);
        let chunks: Vec<Vec<_>> = ds.train_idx.chunks(20).map(|c| c.to_vec()).collect();
        let batches: Vec<Batch> = chunks
            .iter()
            .map(|c| sample_batch(&ds.graph, c, &[5, 10], &mut rng))
            .collect();
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::unbounded(), 3);
        let stats = t.mini_batch_epoch(&ds, &batches).unwrap();
        assert_eq!(stats.num_steps, batches.len());
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn injected_nan_is_caught_rolled_back_and_replays_bit_identically() {
        use betty_device::FaultPlan;
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let micros = micros_of(&batch, 4);
        assert!(micros.len() >= 2);
        let mut clean = Trainer::new(model(&ds, 7), 0.01, Device::unbounded(), 3);
        let mut faulty = Trainer::new(model(&ds, 7), 0.01, Device::unbounded(), 3);
        assert!(faulty.sentinel(), "sentinel defaults on");
        let a0 = clean.micro_batch_epoch(&ds, &micros).unwrap();
        let b0 = faulty.micro_batch_epoch(&ds, &micros).unwrap();
        assert_eq!(a0.loss.to_bits(), b0.loss.to_bits());

        // Poison the second micro-batch of faulty's next epoch.
        let poison_step = faulty.global_step() + 1;
        faulty.arm_faults(&FaultPlan {
            nan_loss_steps: vec![poison_step],
            ..FaultPlan::default()
        });
        let snap = faulty.snapshot();
        let err = faulty.micro_batch_epoch(&ds, &micros).unwrap_err();
        assert!(err.is_injected());
        assert!(err.oom().is_none());
        match &err {
            TrainError::NumericAnomaly { step, kind, injected } => {
                assert_eq!(*step, poison_step);
                assert_eq!(*kind, AnomalyKind::NonFiniteLoss);
                assert!(*injected);
            }
            other => panic!("expected anomaly, got {other:?}"),
        }
        assert_eq!(faulty.device().current_bytes(), 0, "anomaly path drains charges");
        let events = faulty.drain_fault_events();
        assert_eq!(events, vec![FaultEvent::NanLoss { step: poison_step }]);

        // Roll back and retry. The injection already fired (step indices
        // are monotone), so the retried epoch is clean — and bit-identical
        // to the trainer that never saw a fault.
        faulty.restore(&snap);
        let a1 = clean.micro_batch_epoch(&ds, &micros).unwrap();
        let b1 = faulty.micro_batch_epoch(&ds, &micros).unwrap();
        assert_eq!(
            a1.loss.to_bits(),
            b1.loss.to_bits(),
            "rollback + retry must be bit-identical to a never-faulted run"
        );
        assert!(b1.loss.is_finite());
    }

    #[test]
    fn sentinel_off_lets_the_poison_through() {
        use betty_device::FaultPlan;
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::unbounded(), 3);
        t.set_sentinel(false);
        assert!(!t.sentinel());
        t.arm_faults(&FaultPlan {
            nan_loss_steps: vec![0],
            ..FaultPlan::default()
        });
        // Without the sentinel the epoch "succeeds" with a NaN loss — the
        // silent corruption the sentinel exists to stop.
        let stats = t.micro_batch_epoch(&ds, std::slice::from_ref(&batch)).unwrap();
        assert!(stats.loss.is_nan());
    }

    #[test]
    fn anomaly_mid_prefetch_frees_the_staged_buffer() {
        use betty_device::FaultPlan;
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let micros = micros_of(&batch, 4);
        assert!(micros.len() >= 2);
        let mut t = Trainer::new(model(&ds, 0), 0.01, Device::unbounded(), 3);
        // Poison the first step: its successor's transfer is already
        // staged when the sentinel fires, and must be freed with the rest.
        t.arm_faults(&FaultPlan {
            nan_loss_steps: vec![0],
            ..FaultPlan::default()
        });
        let err = t.micro_batch_epoch_prefetched(&ds, &micros).unwrap_err();
        assert!(matches!(err, TrainError::NumericAnomaly { step: 0, .. }), "{err:?}");
        assert_eq!(
            t.device().current_bytes(),
            0,
            "anomaly with a live staging buffer must free it"
        );
    }

    #[test]
    fn pool_toggle_is_bit_identical() {
        let ds = dataset();
        let batch = full_batch(&ds, 2);
        let micros = micros_of(&batch, 4);
        let mut pooled = Trainer::new(model(&ds, 7), 0.01, Device::unbounded(), 3);
        let mut plain = Trainer::new(model(&ds, 7), 0.01, Device::unbounded(), 3);
        plain.set_pooling(false);
        assert!(pooled.pooling());
        assert!(!plain.pooling());
        for _ in 0..3 {
            let a = pooled.micro_batch_epoch(&ds, &micros).unwrap();
            let b = plain.micro_batch_epoch(&ds, &micros).unwrap();
            assert_eq!(a.loss.to_bits(), b.loss.to_bits());
            assert_eq!(a.max_peak_bytes, b.max_peak_bytes);
            // Only the pooled trainer recycles buffers.
            assert_eq!(b.pool_hits, 0);
            assert_eq!(b.pool_bytes_recycled, 0);
        }
        assert_eq!(
            param_bits(&pooled),
            param_bits(&plain),
            "pooling must not change a single parameter bit"
        );
        let stats = pooled.pool_stats();
        assert!(stats.hits > 0, "steady state must reuse buffers: {stats:?}");
        assert!(stats.bytes_recycled > 0);
    }
}

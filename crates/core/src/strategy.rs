//! Named partitioning strategies, matching the paper's comparison set.

use betty_partition::{
    MultilevelPartitioner, OutputGraphPartitioner, OutputPartitioner, RandomPartitioner,
    RangePartitioner, RegPartitioner,
};

/// The four batch-partitioning strategies compared throughout §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Contiguous output-id ranges.
    Range,
    /// Uniformly shuffled output ids.
    Random,
    /// Min-cut of the direct output-node adjacency (redundancy-unaware).
    Metis,
    /// Betty: min-cut of the Redundancy-Embedded Graph.
    Betty,
}

impl StrategyKind {
    /// All strategies in the paper's reporting order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::Range,
        StrategyKind::Random,
        StrategyKind::Metis,
        StrategyKind::Betty,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Range => "range",
            StrategyKind::Random => "random",
            StrategyKind::Metis => "metis",
            StrategyKind::Betty => "betty",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Instantiates the output-partitioning strategy for `kind`.
pub fn build_strategy(kind: StrategyKind, seed: u64) -> Box<dyn OutputPartitioner> {
    match kind {
        StrategyKind::Range => Box::new(OutputGraphPartitioner::new(RangePartitioner::new())),
        StrategyKind::Random => {
            Box::new(OutputGraphPartitioner::new(RandomPartitioner::new(seed)))
        }
        StrategyKind::Metis => Box::new(OutputGraphPartitioner::new(MultilevelPartitioner::new(
            seed,
        ))),
        StrategyKind::Betty => Box::new(RegPartitioner::new(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_graph::{Batch, Block};

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            StrategyKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(StrategyKind::Betty.to_string(), "betty");
    }

    #[test]
    fn all_strategies_split_a_batch() {
        let batch = Batch::new(vec![Block::new(
            (0..6).collect(),
            &[(10, 0), (10, 1), (11, 2), (11, 3), (12, 4), (12, 5)],
        )]);
        for kind in StrategyKind::ALL {
            let strategy = build_strategy(kind, 1);
            let parts = strategy.split_outputs(&batch, 3);
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, 6, "{kind} lost outputs");
        }
    }
}

//! Device-memory accounting for one training step.
//!
//! The trainer executes real tensor math on the host while charging every
//! tensor that would live on the accelerator to the simulated
//! [`Device`]. The charge order reproduces the lifecycle the paper's
//! estimator models (§4.4.3): static tensors first, then forward
//! activations, then — as backprop begins — aggregator intermediates are
//! released while gradients appear, so the recorded peak is
//! `static + hidden + max(aggregator, gradients)`.

use betty_device::{AllocationId, Device, MemoryCategory, OomError, BYTES_PER_VALUE};
use betty_graph::Batch;
use betty_tensor::DType;

/// Per-step sizes, all in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StepSizes {
    pub params: usize,
    pub optimizer_states: usize,
    pub blocks: usize,
    pub input_features: usize,
    pub labels: usize,
    pub feature_cache: usize,
}

impl StepSizes {
    /// Sizes for one micro-batch. `feature_dtype` is the storage width of
    /// node features: the device holds (and transfers) them at that width,
    /// so the `input_features` charge — and therefore
    /// [`StepSizes::transfer_bytes`] — shrinks under a 16-bit store,
    /// matching the estimator's item (2). Everything else stays f32.
    pub(crate) fn for_batch(
        batch: &Batch,
        in_dim: usize,
        param_values: usize,
        opt_state_values: usize,
        feature_dtype: DType,
    ) -> Self {
        StepSizes {
            params: param_values * BYTES_PER_VALUE,
            optimizer_states: opt_state_values * BYTES_PER_VALUE,
            blocks: batch
                .blocks()
                .iter()
                .map(|b| b.storage_values() * BYTES_PER_VALUE)
                .sum(),
            input_features: batch.input_nodes().len() * in_dim * feature_dtype.bytes_per_value(),
            labels: batch.output_nodes().len() * BYTES_PER_VALUE,
            feature_cache: 0,
        }
    }

    /// Adds the out-of-core feature store's pinned hot-set reservation
    /// (`Features::cache_reservation_bytes`) to the step's static charges.
    /// Zero (the dense backend) is a no-op, keeping dense runs
    /// bit-identical to the pre-FeatureStore ledger.
    pub(crate) fn with_feature_cache(mut self, bytes: usize) -> Self {
        self.feature_cache = bytes;
        self
    }

    /// Bytes that must cross the host→device link for this step (model
    /// parameters stay resident; data does not).
    pub(crate) fn transfer_bytes(&self) -> usize {
        self.blocks + self.input_features + self.labels
    }
}

/// Live allocations of one step, so the trainer can stage frees.
#[derive(Debug)]
pub(crate) struct StepCharges {
    statics: Vec<AllocationId>,
    hidden: Option<AllocationId>,
    aggregator: Option<AllocationId>,
    gradients: Option<AllocationId>,
}

impl StepCharges {
    /// Charges the static tensors (params, optimizer state, blocks, input
    /// features, labels). On failure every already-charged static is
    /// rolled back — the ledger is left exactly as found, so recovery
    /// can re-plan against a clean device.
    pub(crate) fn charge_static(device: &mut Device, sizes: &StepSizes) -> Result<Self, OomError> {
        let mut statics = Vec::with_capacity(6);
        for (bytes, cat) in [
            (sizes.params, MemoryCategory::Parameters),
            (sizes.optimizer_states, MemoryCategory::OptimizerStates),
            (sizes.blocks, MemoryCategory::Blocks),
            (sizes.input_features, MemoryCategory::InputFeatures),
            (sizes.labels, MemoryCategory::Labels),
            (sizes.feature_cache, MemoryCategory::FeatureCache),
        ] {
            // The dense backend reserves no cache; skipping the alloc
            // outright (rather than charging 0 bytes) keeps the armed
            // fault injector's per-alloc decision stream identical to
            // the pre-FeatureStore ledger.
            if cat == MemoryCategory::FeatureCache && bytes == 0 {
                continue;
            }
            match device.alloc(bytes, cat) {
                Ok(id) => statics.push(id),
                Err(e) => {
                    for id in statics {
                        device.free(id);
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self {
            statics,
            hidden: None,
            aggregator: None,
            gradients: None,
        })
    }

    /// Charges forward activations: named hidden outputs plus everything
    /// else on the tape (attributed to the aggregator).
    pub(crate) fn charge_forward(
        &mut self,
        device: &mut Device,
        hidden_bytes: usize,
        aggregator_bytes: usize,
    ) -> Result<(), OomError> {
        self.hidden = Some(device.alloc(hidden_bytes, MemoryCategory::HiddenActivations)?);
        self.aggregator =
            Some(device.alloc(aggregator_bytes, MemoryCategory::AggregatorIntermediate)?);
        Ok(())
    }

    /// Transitions to the backward phase: aggregator intermediates are
    /// consumed while parameter gradients materialize.
    pub(crate) fn charge_backward(
        &mut self,
        device: &mut Device,
        grad_bytes: usize,
    ) -> Result<(), OomError> {
        if let Some(agg) = self.aggregator.take() {
            device.free(agg);
        }
        self.gradients = Some(device.alloc(grad_bytes, MemoryCategory::Gradients)?);
        Ok(())
    }

    /// Releases every remaining allocation of the step.
    pub(crate) fn release(self, device: &mut Device) {
        for id in self.statics {
            device.free(id);
        }
        for id in [self.hidden, self.aggregator, self.gradients]
            .into_iter()
            .flatten()
        {
            device.free(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_graph::Block;

    fn batch() -> Batch {
        Batch::new(vec![Block::new(vec![0, 1], &[(2, 0), (3, 1), (4, 1)])])
    }

    #[test]
    fn sizes_match_hand_count() {
        let s = StepSizes::for_batch(&batch(), 8, 100, 200, DType::F32);
        assert_eq!(s.params, 400);
        assert_eq!(s.optimizer_states, 800);
        assert_eq!(s.blocks, 3 * 3 * 4);
        assert_eq!(s.input_features, 5 * 8 * 4);
        assert_eq!(s.labels, 8);
        assert_eq!(s.transfer_bytes(), 36 + 160 + 8);
    }

    #[test]
    fn half_width_features_shrink_input_and_transfer_only() {
        let f32_sizes = StepSizes::for_batch(&batch(), 8, 100, 200, DType::F32);
        let bf16 = StepSizes::for_batch(&batch(), 8, 100, 200, DType::Bf16);
        assert_eq!(bf16.input_features, 5 * 8 * 2);
        assert_eq!(bf16.transfer_bytes(), f32_sizes.transfer_bytes() - 5 * 8 * 2);
        // Only the feature term is dtype-sensitive.
        assert_eq!(bf16.params, f32_sizes.params);
        assert_eq!(bf16.optimizer_states, f32_sizes.optimizer_states);
        assert_eq!(bf16.blocks, f32_sizes.blocks);
        assert_eq!(bf16.labels, f32_sizes.labels);
    }

    #[test]
    fn lifecycle_peak_is_static_plus_hidden_plus_max_transient() {
        let mut dev = Device::unbounded();
        let sizes = StepSizes::for_batch(&batch(), 8, 100, 200, DType::F32);
        let static_total = sizes.params
            + sizes.optimizer_states
            + sizes.blocks
            + sizes.input_features
            + sizes.labels;
        let mut charges = StepCharges::charge_static(&mut dev, &sizes).unwrap();
        charges.charge_forward(&mut dev, 50, 300).unwrap();
        charges.charge_backward(&mut dev, 120).unwrap();
        // Aggregator (300) > gradients (120): forward dominates the peak.
        assert_eq!(dev.peak_bytes(), static_total + 50 + 300);
        charges.release(&mut dev);
        assert_eq!(dev.current_bytes(), 0);
    }

    #[test]
    fn failed_static_charge_rolls_back_partial_allocations() {
        let sizes = StepSizes::for_batch(&batch(), 8, 100, 200, DType::F32);
        // Params + optimizer states fit; the blocks charge pushes past
        // capacity mid-sequence.
        let mut dev = Device::new(sizes.params + sizes.optimizer_states + 1);
        let err = StepCharges::charge_static(&mut dev, &sizes).unwrap_err();
        assert_eq!(err.requested, sizes.blocks);
        assert_eq!(err.in_use, sizes.params + sizes.optimizer_states);
        assert_eq!(
            dev.current_bytes(),
            0,
            "partially charged statics must be rolled back"
        );
        // The rollback really freed capacity, not just the counter.
        assert!(dev
            .alloc(sizes.params + sizes.optimizer_states, MemoryCategory::Parameters)
            .is_ok());
    }

    #[test]
    fn oom_during_forward_propagates() {
        let sizes = StepSizes::for_batch(&batch(), 8, 100, 200, DType::F32);
        let mut dev = Device::new(sizes.transfer_bytes() + sizes.params + sizes.optimizer_states + 10);
        let mut charges = StepCharges::charge_static(&mut dev, &sizes).unwrap();
        assert!(charges.charge_forward(&mut dev, 50, 300).is_err());
        charges.release(&mut dev);
    }
}

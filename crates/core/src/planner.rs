//! Memory-aware batch re-partitioning (paper §4.4.3).

use std::fmt;

use betty_device::{MemoryEstimate, MemoryEstimator};
use betty_graph::{Batch, NodeId};
use betty_partition::OutputPartitioner;

/// The outcome of planning: `K` micro-batches and their memory estimates.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Number of partitions actually used.
    pub k: usize,
    /// Output-node groups, one per micro-batch (empty groups dropped).
    pub parts: Vec<Vec<NodeId>>,
    /// The materialized micro-batches, parallel to `parts`.
    pub micro_batches: Vec<Batch>,
    /// Per-micro-batch memory estimates, parallel to `parts`.
    pub estimates: Vec<MemoryEstimate>,
    /// Wall-clock seconds spent partitioning (REG build + cut).
    pub partition_sec: f64,
    /// Wall-clock seconds spent extracting micro-batch block stacks.
    pub extraction_sec: f64,
}

impl Plan {
    /// Peak estimated bytes over all micro-batches — what determines
    /// whether the plan fits the device.
    pub fn max_estimated_peak(&self) -> usize {
        self.estimates
            .iter()
            .map(MemoryEstimate::peak_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total first-layer input nodes over all micro-batches (redundancy-
    /// inflated; Table 6's "total number of the first layer input").
    pub fn total_input_nodes(&self) -> usize {
        self.micro_batches
            .iter()
            .map(|b| b.input_nodes().len())
            .sum()
    }
}

/// Planning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Even `max_partitions`-way splitting leaves a micro-batch that the
    /// estimator says exceeds capacity.
    CapacityUnreachable {
        /// The partition-count limit that was reached.
        max_partitions: usize,
        /// Smallest max-micro-batch peak seen, in bytes.
        best_peak: usize,
        /// Device capacity, in bytes.
        capacity: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::CapacityUnreachable {
                max_partitions,
                best_peak,
                capacity,
            } => write!(
                f,
                "no K ≤ {max_partitions} fits: best peak {best_peak} bytes > capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Chooses the micro-batch count by estimating memory instead of
/// trial-and-error training runs.
///
/// Starting from `initial_k`, the planner splits the batch, estimates every
/// micro-batch (§4.4.3's "partition memory estimation"), and accepts the
/// first `K` whose largest micro-batch fits the capacity; otherwise it
/// retries with `K + 1` (the paper's re-partitioning loop).
#[derive(Debug, Clone)]
pub struct MemoryAwarePlanner {
    estimator: MemoryEstimator,
    capacity_bytes: usize,
    max_partitions: usize,
    prefetch_staging: bool,
    feature_cache_bytes: usize,
}

impl MemoryAwarePlanner {
    /// A planner for the given estimator and device capacity.
    pub fn new(estimator: MemoryEstimator, capacity_bytes: usize, max_partitions: usize) -> Self {
        assert!(max_partitions > 0, "max_partitions must be positive");
        Self {
            estimator,
            capacity_bytes,
            max_partitions,
            prefetch_staging: false,
            feature_cache_bytes: 0,
        }
    }

    /// Makes the planner account for double-buffered prefetch: every
    /// micro-batch except the last additionally holds its successor's
    /// transfer bytes (blocks + input features + labels) while it
    /// executes, so each estimate's
    /// [`prefetch_staging`](MemoryEstimate::prefetch_staging) term is
    /// filled in and the capacity loop sizes `K` for the overlap buffer
    /// too. Single-micro-batch plans never stage anything and are
    /// unaffected.
    pub fn with_prefetch_staging(mut self, enabled: bool) -> Self {
        self.prefetch_staging = enabled;
        self
    }

    /// Makes the planner charge the out-of-core feature store's pinned
    /// hot-set reservation against every micro-batch: each estimate's
    /// [`feature_cache`](MemoryEstimate::feature_cache) term is set to
    /// `bytes` (the trainer charges the same constant per step, so the
    /// estimator stays drift-free). Pass the store's
    /// `cache_reservation_bytes()`; zero (the dense backend) is a no-op.
    pub fn with_feature_cache(mut self, bytes: usize) -> Self {
        self.feature_cache_bytes = bytes;
        self
    }

    /// The estimator in use.
    pub fn estimator(&self) -> &MemoryEstimator {
        &self.estimator
    }

    /// The device capacity planning normally targets.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Splits `batch` into exactly `k` micro-batches without the capacity
    /// loop (used when an experiment fixes the batch count).
    pub fn plan_fixed(&self, batch: &Batch, strategy: &dyn OutputPartitioner, k: usize) -> Plan {
        let started = std::time::Instant::now();
        let parts: Vec<Vec<NodeId>> = strategy
            .split_outputs(batch, k)
            .into_iter()
            .filter(|p| !p.is_empty())
            .collect();
        let partition_sec = started.elapsed().as_secs_f64();
        let extract_started = std::time::Instant::now();
        // Each restriction reads the shared batch and writes its own
        // micro-batch, so all K materialize concurrently; results come
        // back in part order, identical to the serial loop.
        let micro_batches: Vec<Batch> = betty_runtime::parallel_map(
            parts.len(),
            betty_runtime::configured_threads(),
            |i| batch.restrict(&parts[i]),
        );
        let extraction_sec = extract_started.elapsed().as_secs_f64();
        let mut estimates: Vec<MemoryEstimate> = micro_batches
            .iter()
            .map(|mb| self.estimator.estimate(mb))
            .collect();
        if self.prefetch_staging {
            for i in 0..estimates.len().saturating_sub(1) {
                estimates[i].prefetch_staging = estimates[i + 1].transfer_bytes();
            }
        }
        if self.feature_cache_bytes > 0 {
            for est in &mut estimates {
                est.feature_cache = self.feature_cache_bytes;
            }
        }
        Plan {
            k,
            parts,
            micro_batches,
            estimates,
            partition_sec,
            extraction_sec,
        }
    }

    /// The memory-aware re-partitioning loop: smallest `K ≥ initial_k`
    /// whose largest estimated micro-batch fits capacity.
    ///
    /// The paper iterates `K → K + 1` (§4.4.3); since each probe costs a
    /// full REG partitioning, this implementation probes geometrically and
    /// then binary-searches the fitting boundary — the same minimal `K`
    /// whenever feasibility is monotone in `K` (which holding the strategy
    /// fixed it is, up to partitioner noise), in `O(log K)` probes.
    ///
    /// # Errors
    ///
    /// [`PlanError::CapacityUnreachable`] if no `K ≤ max_partitions` fits.
    pub fn plan(
        &self,
        batch: &Batch,
        strategy: &dyn OutputPartitioner,
        initial_k: usize,
    ) -> Result<Plan, PlanError> {
        self.plan_with_capacity(batch, strategy, initial_k, self.capacity_bytes)
    }

    /// Like [`MemoryAwarePlanner::plan`], but against an explicit
    /// capacity override instead of the planner's own budget.
    ///
    /// OOM recovery uses this for headroom backoff: after an estimator-
    /// underpredicted OOM, re-planning against the full capacity could
    /// reproduce the same failing plan, so each retry plans against a
    /// fraction of the real capacity (see
    /// [`RetryPolicy`](crate::RetryPolicy)).
    ///
    /// # Errors
    ///
    /// [`PlanError::CapacityUnreachable`] if no `K ≤ max_partitions`
    /// fits `capacity_bytes`.
    pub fn plan_with_capacity(
        &self,
        batch: &Batch,
        strategy: &dyn OutputPartitioner,
        initial_k: usize,
        capacity_bytes: usize,
    ) -> Result<Plan, PlanError> {
        let n_outputs = batch.output_nodes().len();
        let k_limit = self.max_partitions.min(n_outputs.max(1));
        let mut best_peak = usize::MAX;
        let mut probe = |k: usize| -> (Plan, bool) {
            let plan = self.plan_fixed(batch, strategy, k);
            let peak = plan.max_estimated_peak();
            best_peak = best_peak.min(peak);
            let fits = peak <= capacity_bytes;
            (plan, fits)
        };

        // Geometric ascent to the first fitting K (or the limit).
        let mut lo = initial_k.max(1).min(k_limit); // highest known-failing K + 1 semantics below
        let mut k = lo;
        let (mut plan, mut fits) = probe(k);
        while !fits {
            if k >= k_limit {
                return Err(PlanError::CapacityUnreachable {
                    max_partitions: self.max_partitions,
                    best_peak,
                    capacity: capacity_bytes,
                });
            }
            lo = k + 1;
            k = (k * 2).min(k_limit);
            let next = probe(k);
            plan = next.0;
            fits = next.1;
        }
        // Binary search the smallest fitting K in [lo, k].
        let mut hi = k;
        let mut best_plan = plan;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (mid_plan, mid_fits) = probe(mid);
            if mid_fits {
                best_plan = mid_plan;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Ok(best_plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_device::{AggregatorKind, ModelShape};
    use betty_graph::Block;
    use betty_partition::RegPartitioner;

    fn estimator() -> MemoryEstimator {
        MemoryEstimator::new(ModelShape {
            in_dim: 16,
            hidden_dim: 8,
            num_classes: 4,
            num_layers: 1,
            aggregator: AggregatorKind::Mean,
            params_gnn: 100,
            params_agg: 0,
        })
    }

    fn batch() -> Batch {
        // 8 outputs with chains of private + shared sources.
        let mut edges = Vec::new();
        for d in 0..8u32 {
            for s in 0..6u32 {
                edges.push((100 + (d / 2) * 10 + s, d)); // pairs share sources
            }
        }
        Batch::new(vec![Block::new((0..8).collect(), &edges)])
    }

    #[test]
    fn plan_fixed_covers_outputs() {
        let planner = MemoryAwarePlanner::new(estimator(), usize::MAX, 64);
        let plan = planner.plan_fixed(&batch(), &RegPartitioner::new(0), 4);
        let mut outputs: Vec<NodeId> = plan.parts.iter().flatten().copied().collect();
        outputs.sort_unstable();
        assert_eq!(outputs, (0..8).collect::<Vec<_>>());
        assert_eq!(plan.micro_batches.len(), plan.estimates.len());
    }

    #[test]
    fn plan_loop_grows_k_until_fit() {
        let planner_unbounded = MemoryAwarePlanner::new(estimator(), usize::MAX, 64);
        let full = planner_unbounded.plan_fixed(&batch(), &RegPartitioner::new(0), 1);
        let full_peak = full.max_estimated_peak();
        // Capacity below the full-batch peak forces K > 1.
        let planner = MemoryAwarePlanner::new(estimator(), full_peak - 1, 64);
        let plan = planner
            .plan(&batch(), &RegPartitioner::new(0), 1)
            .expect("a split must fit");
        assert!(plan.k > 1, "k = {}", plan.k);
        assert!(plan.max_estimated_peak() < full_peak);
    }

    #[test]
    fn impossible_capacity_errors() {
        // Parameters alone exceed one byte of capacity: no K can fit.
        let planner = MemoryAwarePlanner::new(estimator(), 1, 8);
        let err = planner
            .plan(&batch(), &RegPartitioner::new(0), 1)
            .unwrap_err();
        let PlanError::CapacityUnreachable {
            max_partitions,
            capacity,
            ..
        } = err;
        assert_eq!(max_partitions, 8);
        assert_eq!(capacity, 1);
    }

    #[test]
    fn more_parts_than_outputs_stops_at_output_count() {
        let planner = MemoryAwarePlanner::new(estimator(), 1, 1000);
        // 8 outputs: the loop must not run past K = 8.
        assert!(planner.plan(&batch(), &RegPartitioner::new(0), 1).is_err());
    }

    #[test]
    fn capacity_override_forces_bigger_k_than_own_budget() {
        let planner = MemoryAwarePlanner::new(estimator(), usize::MAX, 64);
        let relaxed = planner
            .plan(&batch(), &RegPartitioner::new(0), 1)
            .unwrap();
        assert_eq!(relaxed.k, 1, "unbounded budget keeps the batch whole");
        let full_peak = relaxed.max_estimated_peak();
        let tight = planner
            .plan_with_capacity(&batch(), &RegPartitioner::new(0), 1, full_peak - 1)
            .expect("a split must fit the override");
        assert!(tight.k > 1);
        assert!(tight.max_estimated_peak() < full_peak);
        // The error reports the *effective* capacity, not the planner's.
        let err = planner
            .plan_with_capacity(&batch(), &RegPartitioner::new(0), 1, 1)
            .unwrap_err();
        let PlanError::CapacityUnreachable { capacity, .. } = err;
        assert_eq!(capacity, 1);
    }

    #[test]
    fn initial_k_beyond_output_count_is_clamped() {
        let planner = MemoryAwarePlanner::new(estimator(), usize::MAX, 64);
        // 8 outputs; escalation may ask for more partitions than outputs.
        let plan = planner
            .plan(&batch(), &RegPartitioner::new(0), 500)
            .unwrap();
        assert!(plan.micro_batches.len() <= 8);
    }

    #[test]
    fn prefetch_staging_charges_each_successors_transfer() {
        let plain = MemoryAwarePlanner::new(estimator(), usize::MAX, 64);
        let staged = plain.clone().with_prefetch_staging(true);
        let strategy = RegPartitioner::new(0);
        let base = plain.plan_fixed(&batch(), &strategy, 4);
        let plan = staged.plan_fixed(&batch(), &strategy, 4);
        let k = plan.estimates.len();
        assert!(k >= 2);
        for i in 0..k - 1 {
            assert_eq!(
                plan.estimates[i].prefetch_staging,
                base.estimates[i + 1].transfer_bytes(),
                "micro-batch {i} must hold its successor's transfer"
            );
            assert_eq!(
                plan.estimates[i].peak_bytes(),
                base.estimates[i].peak_bytes() + plan.estimates[i].prefetch_staging
            );
        }
        // The last micro-batch stages nothing; K = 1 plans are untouched.
        assert_eq!(plan.estimates[k - 1].prefetch_staging, 0);
        let single = staged.plan_fixed(&batch(), &strategy, 1);
        assert_eq!(single.estimates[0].prefetch_staging, 0);
    }

    #[test]
    fn feature_cache_charges_every_micro_batch_constantly() {
        let plain = MemoryAwarePlanner::new(estimator(), usize::MAX, 64);
        let cached = plain.clone().with_feature_cache(4096);
        let strategy = RegPartitioner::new(0);
        let base = plain.plan_fixed(&batch(), &strategy, 4);
        let plan = cached.plan_fixed(&batch(), &strategy, 4);
        assert!(plan.estimates.len() >= 2);
        for (i, (est, b)) in plan.estimates.iter().zip(&base.estimates).enumerate() {
            assert_eq!(est.feature_cache, 4096, "micro-batch {i}");
            assert_eq!(
                est.peak_bytes(),
                b.peak_bytes() + 4096,
                "the reservation must raise micro-batch {i}'s peak by exactly the budget"
            );
        }
        // Zero budget (the dense backend) leaves estimates untouched.
        let zero = plain.clone().with_feature_cache(0).plan_fixed(&batch(), &strategy, 4);
        assert_eq!(zero.estimates, base.estimates);
    }

    #[test]
    fn parallel_restrict_matches_serial_exactly() {
        let planner = MemoryAwarePlanner::new(estimator(), usize::MAX, 64);
        let strategy = RegPartitioner::new(0);
        betty_runtime::set_thread_override(Some(1));
        let serial = planner.plan_fixed(&batch(), &strategy, 4);
        for threads in [2, 3, 8] {
            betty_runtime::set_thread_override(Some(threads));
            let parallel = planner.plan_fixed(&batch(), &strategy, 4);
            assert_eq!(serial.parts, parallel.parts);
            assert_eq!(
                serial.micro_batches, parallel.micro_batches,
                "{threads} threads must materialize identical micro-batches"
            );
        }
        betty_runtime::set_thread_override(None);
    }

    #[test]
    fn total_input_nodes_counts_duplicates() {
        let planner = MemoryAwarePlanner::new(estimator(), usize::MAX, 64);
        let plan1 = planner.plan_fixed(&batch(), &RegPartitioner::new(0), 1);
        let plan8 = planner.plan_fixed(&batch(), &RegPartitioner::new(0), 8);
        assert!(plan8.total_input_nodes() >= plan1.total_input_nodes());
    }
}

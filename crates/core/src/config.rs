use betty_device::{gib, FaultPlan};
use betty_nn::AggregatorSpec;
use betty_tensor::DType;

use crate::recovery::RetryPolicy;

/// Which GNN architecture to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// GraphSAGE (the paper's primary model).
    GraphSage,
    /// Graph attention network (the paper's secondary model).
    Gat,
    /// Graph convolutional network (library extension; not evaluated in
    /// the paper, useful as a lightweight baseline model).
    Gcn,
    /// Graph isomorphism network (library extension; sum aggregation with
    /// a learnable ε and per-layer MLPs).
    Gin,
}

/// Everything that defines one training experiment.
///
/// Mirrors the knobs the paper sweeps: aggregator, layer count (via
/// `fanouts.len()`), hidden width, fanout degrees, and device capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Per-layer sampling fanouts, input-most layer first; the layer count
    /// is `fanouts.len()`. Use `usize::MAX` for full neighborhood.
    pub fanouts: Vec<usize>,
    /// Hidden width of the GNN.
    pub hidden_dim: usize,
    /// Neighbor aggregator (GraphSAGE only; GAT uses attention).
    pub aggregator: AggregatorSpec,
    /// Architecture.
    pub model: ModelKind,
    /// Attention heads (GAT only).
    pub num_heads: usize,
    /// Dropout probability between layers.
    pub dropout: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Simulated accelerator capacity in bytes (the paper's RTX 6000 has
    /// 24 GB).
    pub capacity_bytes: usize,
    /// Upper bound on micro-batch count for memory-aware re-partitioning.
    pub max_partitions: usize,
    /// Optional deterministic fault-injection schedule, armed onto the
    /// trainer's device and transfer link at construction.
    pub fault_plan: Option<FaultPlan>,
    /// OOM recovery policy used by
    /// [`Runner::train_epoch_auto_recovering`](crate::Runner::train_epoch_auto_recovering)
    /// and [`fit`](crate::fit()).
    pub retry: RetryPolicy,
    /// Double-buffered prefetch: stage micro-batch `i + 1`'s host→device
    /// transfer while micro-batch `i` computes. The staging buffer is
    /// charged against the device budget and accounted by the memory-aware
    /// planner; losses are bit-identical either way (only timing and the
    /// memory schedule change). The CLI exposes this as `--no-prefetch`.
    pub prefetch: bool,
    /// Pooled tensor workspace: the trainer reuses one autograd tape and
    /// recycles its value/gradient buffers across micro-batches, so
    /// steady-state epochs run with near-zero allocator traffic. Pooled
    /// buffers are fully overwritten before use, so losses and parameters
    /// are bit-identical either way. The CLI exposes this as `--no-pool`.
    pub pool: bool,
    /// Numeric-anomaly sentinel: after every micro-batch backward pass the
    /// trainer checks the loss and all parameter gradients for NaN/Inf and
    /// fails the step before the optimizer can consume poisoned values.
    /// The CLI exposes this as `--no-sentinel`.
    pub sentinel: bool,
    /// Partition-ahead pipeline depth: how many future epochs' batches may
    /// be sampled and REG-partitioned on background workers while the
    /// current epoch trains. `0` (the default) is the classic synchronous
    /// path; any depth degrades to it when only one worker thread is
    /// configured. Losses, parameters, and deterministic epoch stats are
    /// bit-identical at every depth. The CLI exposes this as
    /// `--plan-ahead`.
    pub plan_ahead: usize,
    /// Storage dtype for node features and forward activations. `F32` is
    /// the paper's configuration; `Bf16`/`F16` store features and
    /// activations at half width (compute still accumulates in f32), which
    /// the memory estimator sees as smaller per-micro-batch footprints and
    /// the REG planner turns into fewer partitions on the same budget.
    /// Changes the trained function (values round through a 16-bit grid),
    /// so it is folded into [`ExperimentConfig::fingerprint`]. The CLI
    /// exposes this as `--precision`.
    pub precision: DType,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            fanouts: vec![10, 25],
            hidden_dim: 64,
            aggregator: AggregatorSpec::Mean,
            model: ModelKind::GraphSage,
            num_heads: 4,
            dropout: 0.1,
            learning_rate: 3e-3,
            capacity_bytes: gib(24),
            max_partitions: 512,
            fault_plan: None,
            retry: RetryPolicy::default(),
            prefetch: true,
            pool: true,
            sentinel: true,
            plan_ahead: 0,
            precision: DType::F32,
        }
    }
}

impl ExperimentConfig {
    /// Number of GNN layers (= fanout entries).
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.fanouts.is_empty() {
            return Err("at least one layer fanout required".into());
        }
        if self.hidden_dim == 0 {
            return Err("hidden_dim must be positive".into());
        }
        if self.model == ModelKind::Gat && !self.hidden_dim.is_multiple_of(self.num_heads) {
            return Err(format!(
                "hidden_dim {} not divisible by {} heads",
                self.hidden_dim, self.num_heads
            ));
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout must be in [0, 1)".into());
        }
        if self.learning_rate <= 0.0 {
            return Err("learning rate must be positive".into());
        }
        if self.max_partitions == 0 {
            return Err("max_partitions must be positive".into());
        }
        if let Some(fault_plan) = &self.fault_plan {
            fault_plan
                .validate()
                .map_err(|e| format!("fault plan: {e}"))?;
        }
        self.retry
            .validate()
            .map_err(|e| format!("retry policy: {e}"))?;
        Ok(())
    }

    /// Stable 64-bit fingerprint of the fields that determine the trained
    /// function: architecture, widths, fanouts, dropout, learning rate,
    /// capacity, and partition bound. Stored in checkpoints so `--resume`
    /// can reject a checkpoint produced under a different experiment.
    /// Fault injection and retry knobs are deliberately excluded — they
    /// perturb *how* a run executes, not *what* it computes, and a run
    /// resumed without the fault plan that killed it must still load.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a, hand-rolled so the value is stable across Rust releases
        // (std's DefaultHasher makes no such promise).
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for &fanout in &self.fanouts {
            eat(&(fanout as u64).to_le_bytes());
        }
        eat(&(self.hidden_dim as u64).to_le_bytes());
        eat(format!("{:?}", self.aggregator).as_bytes());
        eat(format!("{:?}", self.model).as_bytes());
        eat(&(self.num_heads as u64).to_le_bytes());
        eat(&self.dropout.to_bits().to_le_bytes());
        eat(&self.learning_rate.to_bits().to_le_bytes());
        eat(&(self.capacity_bytes as u64).to_le_bytes());
        eat(&(self.max_partitions as u64).to_le_bytes());
        // Storage precision changes the trained function (activations and
        // features round through a 16-bit grid), so a bf16 resume must
        // reject an f32 checkpoint and vice versa. Folded only when
        // non-default so every f32 checkpoint written before the knob
        // existed keeps its fingerprint.
        if self.precision != DType::F32 {
            eat(b"precision:");
            eat(self.precision.name().as_bytes());
        }
        h
    }

    /// Fingerprint of the config *and* the dataset shape it was trained
    /// against. [`ExperimentConfig::fingerprint`] alone covers only
    /// model-shape knobs, so a checkpoint from Cora would happily resume
    /// onto Pubmed as long as the config matched — the optimizer moments
    /// and parameters would then be silently misapplied (or crash on a
    /// shape mismatch deep inside the model). Folding in `feature_dim`,
    /// `num_classes`, and `num_nodes` makes `--resume` reject a
    /// checkpoint produced against a different dataset up front.
    pub fn fingerprint_for_dataset(
        &self,
        feature_dim: usize,
        num_classes: usize,
        num_nodes: usize,
    ) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.fingerprint();
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(feature_dim as u64).to_le_bytes());
        eat(&(num_classes as u64).to_le_bytes());
        eat(&(num_nodes as u64).to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ExperimentConfig::default().validate().unwrap();
        assert_eq!(ExperimentConfig::default().num_layers(), 2);
    }

    #[test]
    fn rejects_bad_fields() {
        let no_layers = ExperimentConfig {
            fanouts: vec![],
            ..ExperimentConfig::default()
        };
        assert!(no_layers.validate().is_err());

        let bad_heads = ExperimentConfig {
            model: ModelKind::Gat,
            hidden_dim: 30,
            num_heads: 4,
            ..ExperimentConfig::default()
        };
        assert!(bad_heads.validate().is_err());

        let bad_dropout = ExperimentConfig {
            dropout: 1.0,
            ..ExperimentConfig::default()
        };
        assert!(bad_dropout.validate().is_err());
    }

    #[test]
    fn rejects_bad_fault_and_retry_knobs() {
        let bad_rate = ExperimentConfig {
            fault_plan: Some(FaultPlan {
                alloc_failure_rate: 2.0,
                ..FaultPlan::default()
            }),
            ..ExperimentConfig::default()
        };
        assert!(bad_rate.validate().unwrap_err().contains("fault plan"));

        let bad_growth = ExperimentConfig {
            retry: RetryPolicy {
                growth: 0.0,
                ..RetryPolicy::default()
            },
            ..ExperimentConfig::default()
        };
        assert!(bad_growth.validate().unwrap_err().contains("retry policy"));
    }

    #[test]
    fn fingerprint_tracks_model_knobs_not_fault_knobs() {
        let base = ExperimentConfig::default();
        assert_eq!(base.fingerprint(), ExperimentConfig::default().fingerprint());

        let wider = ExperimentConfig {
            hidden_dim: 128,
            ..ExperimentConfig::default()
        };
        assert_ne!(base.fingerprint(), wider.fingerprint());

        let other_model = ExperimentConfig {
            model: ModelKind::Gcn,
            ..ExperimentConfig::default()
        };
        assert_ne!(base.fingerprint(), other_model.fingerprint());

        // Fault/retry/execution knobs must not change the fingerprint: a
        // run resumed without its fault plan still has to load.
        let perturbed = ExperimentConfig {
            fault_plan: Some(FaultPlan::default()),
            retry: RetryPolicy {
                max_retries: 9,
                ..RetryPolicy::default()
            },
            prefetch: false,
            pool: false,
            sentinel: false,
            plan_ahead: 3,
            ..ExperimentConfig::default()
        };
        assert_eq!(base.fingerprint(), perturbed.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_storage_precision() {
        let base = ExperimentConfig::default();
        let bf16 = ExperimentConfig {
            precision: DType::Bf16,
            ..ExperimentConfig::default()
        };
        let f16 = ExperimentConfig {
            precision: DType::F16,
            ..ExperimentConfig::default()
        };
        // Each precision trains a different function: all three must be
        // mutually distinguishable so --resume rejects cross-precision
        // checkpoints.
        assert_ne!(base.fingerprint(), bf16.fingerprint());
        assert_ne!(base.fingerprint(), f16.fingerprint());
        assert_ne!(bf16.fingerprint(), f16.fingerprint());
        // The explicit-f32 config hashes as before the knob existed, so
        // pre-existing f32 checkpoints still resume.
        let explicit_f32 = ExperimentConfig {
            precision: DType::F32,
            ..ExperimentConfig::default()
        };
        assert_eq!(base.fingerprint(), explicit_f32.fingerprint());
    }

    #[test]
    fn dataset_fingerprint_tracks_dataset_shape() {
        let cfg = ExperimentConfig::default();
        let base = cfg.fingerprint_for_dataset(128, 40, 1000);
        assert_eq!(base, cfg.fingerprint_for_dataset(128, 40, 1000));
        // Same config, different dataset shape → different fingerprint.
        assert_ne!(base, cfg.fingerprint_for_dataset(500, 40, 1000));
        assert_ne!(base, cfg.fingerprint_for_dataset(128, 3, 1000));
        assert_ne!(base, cfg.fingerprint_for_dataset(128, 40, 999));
        // Config knobs still matter under the combined fingerprint.
        let wider = ExperimentConfig {
            hidden_dim: 128,
            ..ExperimentConfig::default()
        };
        assert_ne!(base, wider.fingerprint_for_dataset(128, 40, 1000));
    }
}

//! Training statistics collected by the trainer.

/// Measurements from executing one (micro-)batch step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepStats {
    /// Loss contribution (already scaled to the effective batch).
    pub loss: f64,
    /// Wall-clock compute seconds (forward + backward on this host).
    pub compute_sec: f64,
    /// Simulated host→device transfer seconds.
    pub transfer_sec: f64,
    /// Peak device bytes during the step.
    pub peak_bytes: usize,
    /// First-layer input nodes loaded.
    pub input_nodes: usize,
    /// Source nodes summed over every layer (compute volume).
    pub total_src_nodes: usize,
    /// Feature rows served from resident shards (dense backend: every row).
    pub feature_hits: u64,
    /// Feature rows whose shard had to be paged in from disk first.
    pub feature_misses: u64,
    /// Feature shards read from disk for this step.
    pub feature_pages_in: u64,
    /// Bytes of shard payload read from disk for this step.
    pub feature_page_in_bytes: u64,
    /// Simulated seconds spent paging feature shards over the store's
    /// NVMe-like link, for the portion *not* hidden behind compute (the
    /// prefetcher folds hidden page-in time into its overlap instead).
    pub page_in_sec: f64,
    /// Transient shard-read failures absorbed by the retry/backoff path
    /// during this step (0 without injected storage faults).
    pub io_retries: u64,
    /// Shards whose payload failed CRC mid-run and were reconstructed
    /// bit-identically from their XOR parity group.
    pub shards_repaired: u64,
    /// Simulated seconds spent on storage recovery: retry backoff plus
    /// the link time of parity/peer reads feeding shard reconstruction.
    /// Wall-clock-like, excluded from bit-identity comparisons.
    pub repair_sec: f64,
}

/// Aggregated measurements for one epoch (all micro-batches of all batches).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochStats {
    /// Mean training loss over the effective batch.
    pub loss: f64,
    /// Number of micro-batches (or mini-batches) executed.
    pub num_steps: usize,
    /// Total compute seconds.
    pub compute_sec: f64,
    /// Total simulated transfer seconds.
    pub transfer_sec: f64,
    /// Maximum per-step peak device bytes — the number the paper reports
    /// as "max memory consumption".
    pub max_peak_bytes: usize,
    /// Total input nodes loaded (redundancy-inflated).
    pub total_input_nodes: usize,
    /// Total source nodes over all layers and steps.
    pub total_src_nodes: usize,
    /// Host (CPU) bytes staging the epoch: the raw feature matrix plus the
    /// full batch's and micro-batches' block structures. Betty's
    /// heterogeneous-memory story (§2.2): the device only ever holds one
    /// micro-batch; everything else waits in host memory.
    pub host_bytes: usize,
    /// Checkpointed recovery attempts consumed producing this epoch
    /// (0 when the first attempt succeeded; only
    /// [`crate::Runner::train_epoch_auto_recovering`] sets this).
    pub oom_retries: usize,
    /// Injected fault events observed during this epoch (0 without an
    /// armed [`betty_device::FaultPlan`]).
    pub injected_faults: usize,
    /// Numeric-anomaly rollbacks consumed producing this epoch: a NaN/Inf
    /// loss or gradient was caught by the trainer's sentinel and the
    /// trainable state was restored from the epoch-start snapshot (only
    /// [`crate::Runner::train_epoch_auto_recovering`] sets this).
    pub anomaly_rollbacks: usize,
    /// Simulated transfer seconds hidden behind compute by the
    /// double-buffered prefetch executor (0 without prefetch). The epoch's
    /// `transfer_sec` already excludes this, so
    /// `transfer_sec + prefetch_overlap_sec` is what a prefetch-less run
    /// would have paid on the link.
    pub prefetch_overlap_sec: f64,
    /// Wall-clock planning seconds (sampling + REG partitioning +
    /// micro-batch extraction) hidden off the critical path by the
    /// partition-ahead pipeline: the staged bundle's total preparation
    /// time minus whatever wait the consuming epoch still paid at the
    /// handoff. 0 at `--plan-ahead 0` (or one worker thread), and for the
    /// first epoch after a pipeline (re)start, which is effectively
    /// synchronous. Wall-clock: excluded from bit-identity comparisons,
    /// like every other timing field.
    pub plan_ahead_overlap_sec: f64,
    /// Transfer bytes of the staged plan this epoch consumed from the
    /// partition-ahead pipeline, as charged to the device ledger's
    /// `plan ahead` category at the epoch boundary (0 when the epoch
    /// planned synchronously, or when the charge was skipped because it
    /// alone exceeded device capacity).
    pub plan_ahead_staged_bytes: usize,
    /// Largest analytical peak estimate (Eq. 5) over the epoch's
    /// micro-batches, in bytes — the planner's prediction of
    /// `max_peak_bytes`. 0 when the epoch ran without a plan (e.g.
    /// [`crate::Runner::train_micro_batches`] with caller-supplied
    /// batches).
    pub estimated_peak_bytes: usize,
    /// Worst per-micro-batch measured/estimated peak ratio — the
    /// estimator-drift metric. `≤ 1.0` means every estimate was
    /// admissible (safe overestimates); `> 1.0` means the estimator
    /// under-predicted at least one step, the direction that can OOM a
    /// plan that "fits". 0 when the epoch ran without a plan.
    pub estimator_drift: f64,
    /// Tensor-workspace buffers served from the trainer's pool during this
    /// epoch (a hit avoids one heap allocation). 0 when pooling is off.
    pub pool_hits: u64,
    /// Workspace requests the pool had to satisfy with a fresh heap
    /// allocation. In steady state (same-shaped micro-batches) this
    /// approaches 0 and `pool_hits` dominates.
    pub pool_misses: u64,
    /// Bytes handed back out from recycled buffers instead of the heap
    /// (`4 * elements` summed over every pool hit).
    pub pool_bytes_recycled: u64,
    /// Devices of the simulated group declared lost during this epoch
    /// (mid-epoch failures plus all-reduce exhaustion; only the elastic
    /// multi-device path sets this).
    pub devices_lost: usize,
    /// Micro-batches migrated off lost devices onto survivors.
    pub migrated_steps: usize,
    /// Timed-out all-reduce rounds that were retried with backoff.
    pub link_retries: usize,
    /// Devices flagged as stragglers (attributed time per unit work
    /// exceeded the group's threshold over the median device).
    pub stragglers_detected: usize,
    /// Feature rows served from the store's resident set over the epoch.
    /// The dense in-memory backend scores every row as a hit, so
    /// `feature_misses == 0` is the out-of-core story's baseline.
    pub feature_hits: u64,
    /// Feature rows that required paging their shard in from disk.
    pub feature_misses: u64,
    /// Feature shards paged in from disk over the epoch.
    pub feature_pages_in: u64,
    /// Shard payload bytes read from disk over the epoch.
    pub feature_page_in_bytes: u64,
    /// Simulated page-in seconds paid on the critical path (excludes
    /// page-ins hidden behind compute by the prefetcher, which land in
    /// `prefetch_overlap_sec`). Wall-clock-like timing: excluded from
    /// bit-identity comparisons.
    pub page_in_sec: f64,
    /// Transient shard-read failures absorbed by retry/backoff over the
    /// epoch (0 without injected storage faults). Fault-injection
    /// bookkeeping: excluded from bit-identity comparisons.
    pub io_retries: u64,
    /// Shards reconstructed from XOR parity after a mid-run CRC mismatch.
    /// Fault-injection bookkeeping: excluded from bit-identity
    /// comparisons.
    pub shards_repaired: u64,
    /// Simulated storage-recovery seconds (retry backoff + parity/peer
    /// read link time). Wall-clock-like: excluded from bit-identity
    /// comparisons.
    pub repair_sec: f64,
}

impl EpochStats {
    /// Folds a step into the epoch aggregate.
    pub fn absorb(&mut self, step: &StepStats) {
        self.loss += step.loss;
        self.num_steps += 1;
        self.compute_sec += step.compute_sec;
        self.transfer_sec += step.transfer_sec;
        self.max_peak_bytes = self.max_peak_bytes.max(step.peak_bytes);
        self.total_input_nodes += step.input_nodes;
        self.total_src_nodes += step.total_src_nodes;
        self.feature_hits += step.feature_hits;
        self.feature_misses += step.feature_misses;
        self.feature_pages_in += step.feature_pages_in;
        self.feature_page_in_bytes += step.feature_page_in_bytes;
        self.page_in_sec += step.page_in_sec;
        self.io_retries += step.io_retries;
        self.shards_repaired += step.shards_repaired;
        self.repair_sec += step.repair_sec;
    }

    /// Fraction of feature-row requests served without touching disk
    /// (1.0 when nothing was requested — an idle store never misses).
    pub fn feature_hit_rate(&self) -> f64 {
        let total = self.feature_hits + self.feature_misses;
        if total == 0 {
            1.0
        } else {
            self.feature_hits as f64 / total as f64
        }
    }

    /// Epoch wall time: compute plus simulated transfer plus exposed
    /// feature page-in time (zero for the dense in-memory backend) plus
    /// storage-recovery time (zero without faults or corruption).
    pub fn total_sec(&self) -> f64 {
        self.compute_sec + self.transfer_sec + self.page_in_sec + self.repair_sec
    }

    /// The paper's computation-efficiency metric (§6.4): total nodes in all
    /// micro-batches divided by epoch time.
    pub fn computation_efficiency(&self) -> f64 {
        if self.total_sec() == 0.0 {
            0.0
        } else {
            self.total_src_nodes as f64 / self.total_sec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(peak: usize) -> StepStats {
        StepStats {
            loss: 0.5,
            compute_sec: 1.0,
            transfer_sec: 0.5,
            peak_bytes: peak,
            input_nodes: 10,
            total_src_nodes: 30,
            feature_hits: 8,
            feature_misses: 2,
            feature_pages_in: 1,
            feature_page_in_bytes: 256,
            page_in_sec: 0.01,
            io_retries: 2,
            shards_repaired: 1,
            repair_sec: 0.005,
        }
    }

    #[test]
    fn absorb_accumulates_and_maxes() {
        let mut e = EpochStats::default();
        e.absorb(&step(100));
        e.absorb(&step(70));
        assert_eq!(e.num_steps, 2);
        assert_eq!(e.max_peak_bytes, 100);
        assert_eq!(e.total_input_nodes, 20);
        assert_eq!(e.feature_hits, 16);
        assert_eq!(e.feature_misses, 4);
        assert_eq!(e.feature_pages_in, 2);
        assert_eq!(e.feature_page_in_bytes, 512);
        assert!((e.feature_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(EpochStats::default().feature_hit_rate(), 1.0);
        assert_eq!(e.io_retries, 4);
        assert_eq!(e.shards_repaired, 2);
        assert!((e.repair_sec - 0.01).abs() < 1e-12);
        assert!((e.loss - 1.0).abs() < 1e-12);
        assert!(
            (e.total_sec() - 3.03).abs() < 1e-12,
            "page-in and repair time count"
        );
        assert!((e.computation_efficiency() - 60.0 / 3.03).abs() < 1e-9);
    }

    #[test]
    fn efficiency_zero_time_is_zero() {
        assert_eq!(EpochStats::default().computation_efficiency(), 0.0);
    }
}

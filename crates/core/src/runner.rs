//! High-level experiment facade: dataset + config → epochs.

use std::fmt;

use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use betty_data::Dataset;
use betty_device::{Device, MemoryEstimator, ModelShape};
use betty_graph::{sample_batch_in, Batch, CsrGraph, NodeId};
use betty_nn::{Gat, Gcn, Gin, GnnModel, GraphSage};

use crate::config::{ExperimentConfig, ModelKind};
use crate::planner::{MemoryAwarePlanner, Plan, PlanError};
use crate::stats::EpochStats;
use crate::strategy::{build_strategy, StrategyKind};
use crate::trainer::{TrainError, Trainer};
use crate::{aggregator_kind, eval};

/// Failure of a full planning-plus-training epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// No partition count satisfied the capacity constraint.
    Plan(PlanError),
    /// A step ran out of device memory.
    Train(TrainError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Plan(e) => write!(f, "planning failed: {e}"),
            RunError::Train(e) => write!(f, "training failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<PlanError> for RunError {
    fn from(e: PlanError) -> Self {
        RunError::Plan(e)
    }
}

impl From<TrainError> for RunError {
    fn from(e: TrainError) -> Self {
        RunError::Train(e)
    }
}

/// Ties a model, trainer, planner, and sampler together for one experiment.
///
/// Each `train_epoch_*` call re-samples the full training batch (per-epoch
/// neighbor sampling, as DGL does), partitions it with the requested
/// strategy, and trains. See the [crate docs](crate) for an example.
pub struct Runner {
    config: ExperimentConfig,
    trainer: Trainer,
    planner: MemoryAwarePlanner,
    in_graph: CsrGraph,
    sample_rng: Pcg64Mcg,
    seed: u64,
    cached_parts: Option<CachedParts>,
}

/// A reusable output-node assignment from a previous epoch's plan.
///
/// The output set is the training split — identical every epoch — so the
/// grouping from one epoch's REG cut remains *valid* on the next epoch's
/// re-sampled batch (only slightly stale as an optimum). Reusing it
/// amortizes Betty's partitioning overhead (§7 future work).
struct CachedParts {
    strategy: StrategyKind,
    k: usize,
    parts: Vec<Vec<NodeId>>,
    epochs_used: usize,
}

impl fmt::Debug for Runner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runner")
            .field("config", &self.config)
            .finish()
    }
}

/// Host bytes staging one epoch: raw features plus every micro-batch's
/// block structure (3 values per edge).
fn host_staging_bytes(dataset: &Dataset, micro_batches: &[Batch]) -> usize {
    dataset.features.size_bytes()
        + micro_batches
            .iter()
            .map(|mb| mb.total_edges() * 3 * betty_device::BYTES_PER_VALUE)
            .sum::<usize>()
}

/// Calibrated per-node LSTM intermediate constant for *this* autograd
/// implementation: each unrolled cell step tapes the gathered input (d),
/// the concat (2d), fused gates twice (8d), four slices (4d), four
/// activations (4d) and five state ops (5d) — 24 values per node per step.
/// The paper's PyTorch constant is 18 and explicitly
/// implementation-dependent (§4.4.3); Table 7 reports our estimation error
/// under this constant.
pub const LSTM_TAPE_CONSTANT: usize = 24;

impl Runner {
    /// Builds the model, device, estimator and planner for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`ExperimentConfig::validate`].
    pub fn new(dataset: &Dataset, config: &ExperimentConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid config: {e}"));
        let mut model_rng = Pcg64Mcg::seed_from_u64(seed);
        let model: Box<dyn GnnModel> = match config.model {
            ModelKind::GraphSage => Box::new(GraphSage::new(
                dataset.feature_dim(),
                config.hidden_dim,
                dataset.num_classes,
                config.num_layers(),
                config.aggregator,
                config.dropout,
                &mut model_rng,
            )),
            ModelKind::Gat => Box::new(Gat::new(
                dataset.feature_dim(),
                config.hidden_dim,
                dataset.num_classes,
                config.num_layers(),
                config.num_heads,
                config.dropout,
                &mut model_rng,
            )),
            ModelKind::Gcn => Box::new(Gcn::new(
                dataset.feature_dim(),
                config.hidden_dim,
                dataset.num_classes,
                config.num_layers(),
                config.dropout,
                &mut model_rng,
            )),
            ModelKind::Gin => Box::new(Gin::new(
                dataset.feature_dim(),
                config.hidden_dim,
                dataset.num_classes,
                config.num_layers(),
                config.dropout,
                &mut model_rng,
            )),
        };
        let estimator_aggregator = match config.model {
            // GCN/GIN fused aggregations have the same footprint shape as
            // fused Mean/Sum.
            ModelKind::GraphSage | ModelKind::Gcn | ModelKind::Gin => {
                aggregator_kind(config.aggregator)
            }
            ModelKind::Gat => betty_device::AggregatorKind::Attention {
                heads: config.num_heads,
            },
        };
        let shape = ModelShape {
            in_dim: dataset.feature_dim(),
            hidden_dim: config.hidden_dim,
            num_classes: dataset.num_classes,
            num_layers: config.num_layers(),
            aggregator: estimator_aggregator,
            params_gnn: model.gnn_param_count(),
            params_agg: model.agg_param_count(),
        };
        let estimator = MemoryEstimator::new(shape).with_lstm_constant(LSTM_TAPE_CONSTANT);
        let planner =
            MemoryAwarePlanner::new(estimator, config.capacity_bytes, config.max_partitions);
        let trainer = Trainer::new(
            model,
            config.learning_rate,
            Device::new(config.capacity_bytes),
            seed.wrapping_add(1),
        );
        Self {
            config: config.clone(),
            trainer,
            planner,
            in_graph: dataset.graph.reverse(),
            sample_rng: Pcg64Mcg::seed_from_u64(seed.wrapping_add(2)),
            seed,
            cached_parts: None,
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The underlying trainer (device, transfer model, model).
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Mutable trainer access (e.g. to restore a checkpoint into the
    /// model).
    pub fn trainer_mut(&mut self) -> &mut Trainer {
        &mut self.trainer
    }

    /// The memory-aware planner (and its estimator).
    pub fn planner(&self) -> &MemoryAwarePlanner {
        &self.planner
    }

    /// Updates the learning rate mid-training (for LR schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.trainer.set_learning_rate(lr);
    }

    /// Samples the full training batch with the configured fanouts.
    pub fn sample_full_batch(&mut self, dataset: &Dataset) -> Batch {
        sample_batch_in(
            &self.in_graph,
            &dataset.train_idx,
            &self.config.fanouts,
            &mut self.sample_rng,
        )
    }

    /// Samples a batch for an arbitrary seed set (e.g. mini-batch chunks).
    pub fn sample_batch_for(&mut self, seeds: &[NodeId]) -> Batch {
        sample_batch_in(
            &self.in_graph,
            seeds,
            &self.config.fanouts,
            &mut self.sample_rng,
        )
    }

    /// Splits a batch into exactly `k` micro-batches using `strategy`.
    pub fn plan_fixed(&self, batch: &Batch, strategy: StrategyKind, k: usize) -> Plan {
        self.planner
            .plan_fixed(batch, build_strategy(strategy, self.seed).as_ref(), k)
    }

    /// Memory-aware planning: smallest `K` fitting the configured capacity.
    ///
    /// # Errors
    ///
    /// [`PlanError`] if no partition count fits.
    pub fn plan_auto(&self, batch: &Batch, strategy: StrategyKind) -> Result<Plan, PlanError> {
        self.planner
            .plan(batch, build_strategy(strategy, self.seed).as_ref(), 1)
    }

    /// One epoch of micro-batch training with a fixed partition count.
    ///
    /// # Errors
    ///
    /// [`TrainError::Oom`] if a micro-batch exceeds capacity.
    pub fn train_epoch_betty(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        k: usize,
    ) -> Result<EpochStats, TrainError> {
        let batch = self.sample_full_batch(dataset);
        let plan = self.plan_fixed(&batch, strategy, k);
        let mut stats = self
            .trainer
            .micro_batch_epoch(dataset, &plan.micro_batches)?;
        stats.host_bytes = host_staging_bytes(dataset, &plan.micro_batches)
            + batch.total_edges() * 3 * betty_device::BYTES_PER_VALUE;
        Ok(stats)
    }

    /// One epoch with memory-aware partition-count selection; returns the
    /// epoch stats and the chosen `K`.
    ///
    /// # Errors
    ///
    /// [`RunError`] if planning or training fails.
    pub fn train_epoch_auto(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
    ) -> Result<(EpochStats, usize), RunError> {
        let batch = self.sample_full_batch(dataset);
        let plan = self.plan_auto(&batch, strategy)?;
        let mut stats = self.trainer.micro_batch_epoch(dataset, &plan.micro_batches)?;
        stats.host_bytes = host_staging_bytes(dataset, &plan.micro_batches)
            + batch.total_edges() * 3 * betty_device::BYTES_PER_VALUE;
        Ok((stats, plan.micro_batches.len()))
    }

    /// Trains one effective batch from pre-built micro-batches (gradient
    /// accumulation + single optimizer step). Benches use this to measure
    /// a specific plan's micro-batches directly.
    ///
    /// # Errors
    ///
    /// [`TrainError::Oom`] if a micro-batch exceeds capacity.
    pub fn train_micro_batches(
        &mut self,
        dataset: &Dataset,
        micro_batches: &[Batch],
    ) -> Result<EpochStats, TrainError> {
        let mut stats = self.trainer.micro_batch_epoch(dataset, micro_batches)?;
        stats.host_bytes = host_staging_bytes(dataset, micro_batches);
        Ok(stats)
    }

    /// Like [`Runner::train_epoch_betty`], but reuses the previous epoch's
    /// output-node grouping for up to `refresh_every - 1` epochs before
    /// re-partitioning — amortizing the REG construction + cut cost, which
    /// is valid because the output set (the training split) is identical
    /// across epochs. Returns the epoch stats and whether this epoch paid
    /// for a fresh partitioning.
    ///
    /// # Errors
    ///
    /// [`TrainError::Oom`] if a micro-batch exceeds capacity.
    ///
    /// # Panics
    ///
    /// Panics if `refresh_every == 0`.
    pub fn train_epoch_betty_cached(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        k: usize,
        refresh_every: usize,
    ) -> Result<(EpochStats, bool), TrainError> {
        assert!(refresh_every > 0, "refresh_every must be positive");
        let batch = self.sample_full_batch(dataset);
        let reusable = self.cached_parts.as_ref().is_some_and(|c| {
            c.strategy == strategy && c.k == k && c.epochs_used < refresh_every
        });
        let fresh = !reusable;
        if fresh {
            let plan = self.plan_fixed(&batch, strategy, k);
            self.cached_parts = Some(CachedParts {
                strategy,
                k,
                parts: plan.parts.clone(),
                epochs_used: 0,
            });
        }
        let cache = self.cached_parts.as_mut().expect("just ensured");
        cache.epochs_used += 1;
        let micro_batches: Vec<Batch> = cache
            .parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect();
        let mut stats = self.trainer.micro_batch_epoch(dataset, &micro_batches)?;
        stats.host_bytes = host_staging_bytes(dataset, &micro_batches)
            + batch.total_edges() * 3 * betty_device::BYTES_PER_VALUE;
        Ok((stats, fresh))
    }

    /// One epoch of simulated data-parallel training on a device group
    /// (the paper's multi-GPU future work, §7): micro-batches are
    /// LPT-scheduled across devices by estimated work, gradients are
    /// ring-all-reduced (numerically identical to single-device
    /// accumulation), and the wall time is the slowest device plus the
    /// synchronization cost.
    ///
    /// # Errors
    ///
    /// [`TrainError::Oom`] if a micro-batch exceeds capacity.
    pub fn train_epoch_multi_device(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        k: usize,
        group: &crate::multi::DeviceGroup,
    ) -> Result<crate::multi::MultiDeviceEpoch, TrainError> {
        let batch = self.sample_full_batch(dataset);
        let plan = self.plan_fixed(&batch, strategy, k);
        // Work proxy: total edges of each micro-batch's block stack.
        let work: Vec<f64> = plan
            .micro_batches
            .iter()
            .map(|mb| mb.total_edges() as f64)
            .collect();
        let assignment = crate::multi::lpt_assignment(&work, group.num_devices);
        let (combined, steps) = self
            .trainer
            .micro_batch_epoch_with_steps(dataset, &plan.micro_batches)?;
        let per_device = crate::multi::fold_by_device(&steps, &assignment, group.num_devices);
        let grad_bytes =
            self.trainer.model().total_param_count() * betty_device::BYTES_PER_VALUE;
        Ok(crate::multi::MultiDeviceEpoch {
            combined,
            per_device,
            assignment,
            allreduce_sec: group.allreduce_sec(grad_bytes),
        })
    }

    /// One epoch of classic mini-batch training over `num_batches` chunks
    /// of the training set (the §3.3/Table 6 baseline).
    ///
    /// # Errors
    ///
    /// [`TrainError::Oom`] if a mini-batch exceeds capacity.
    pub fn train_epoch_mini(
        &mut self,
        dataset: &Dataset,
        num_batches: usize,
    ) -> Result<EpochStats, TrainError> {
        // Split as evenly as possible into *exactly* num_batches chunks
        // (plain `chunks(ceil(n/k))` can come up short, e.g. 9 nodes into
        // 4 batches of 3 yields only 3 batches).
        let num_batches = num_batches.max(1).min(dataset.train_idx.len().max(1));
        let n = dataset.train_idx.len();
        let base = n / num_batches;
        let extra = n % num_batches;
        let mut chunks: Vec<Vec<NodeId>> = Vec::with_capacity(num_batches);
        let mut start = 0usize;
        for i in 0..num_batches {
            let len = base + usize::from(i < extra);
            chunks.push(dataset.train_idx[start..start + len].to_vec());
            start += len;
        }
        let batches: Vec<Batch> = chunks
            .iter()
            .map(|c| self.sample_batch_for(c))
            .collect();
        self.trainer.mini_batch_epoch(dataset, &batches)
    }

    /// Accuracy on `nodes` using the configured fanouts for inference.
    pub fn evaluate(&mut self, dataset: &Dataset, nodes: &[NodeId]) -> f64 {
        let fanouts = self.config.fanouts.clone();
        eval::accuracy(
            self.trainer.model(),
            dataset,
            nodes,
            &fanouts,
            &mut self.sample_rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_data::DatasetSpec;
    use betty_device::gib;
    use betty_nn::AggregatorSpec;

    fn dataset() -> Dataset {
        DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(12)
            .generate(4)
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig {
            fanouts: vec![4, 8],
            hidden_dim: 16,
            aggregator: AggregatorSpec::Mean,
            capacity_bytes: gib(4),
            dropout: 0.0,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn betty_epoch_runs_and_learns() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let mut first = None;
        let mut last = None;
        for _ in 0..8 {
            let stats = runner
                .train_epoch_betty(&ds, StrategyKind::Betty, 2)
                .unwrap();
            first.get_or_insert(stats.loss);
            last = Some(stats.loss);
        }
        assert!(last.unwrap() < first.unwrap());
    }

    #[test]
    fn auto_planning_picks_k_one_when_everything_fits() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let (_, k) = runner.train_epoch_auto(&ds, StrategyKind::Betty).unwrap();
        assert_eq!(k, 1, "4 GiB fits the tiny batch whole");
    }

    #[test]
    fn auto_planning_splits_under_pressure() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let batch = runner.sample_full_batch(&ds);
        let full_peak = runner
            .plan_fixed(&batch, StrategyKind::Betty, 1)
            .max_estimated_peak();
        let tight = ExperimentConfig {
            capacity_bytes: full_peak - 1,
            ..config()
        };
        let mut tight_runner = Runner::new(&ds, &tight, 0);
        let (stats, k) = tight_runner
            .train_epoch_auto(&ds, StrategyKind::Betty)
            .unwrap();
        assert!(k > 1);
        assert!(stats.max_peak_bytes <= full_peak);
    }

    #[test]
    fn gat_runner_trains() {
        let ds = dataset();
        let cfg = ExperimentConfig {
            model: ModelKind::Gat,
            hidden_dim: 16,
            num_heads: 4,
            ..config()
        };
        let mut runner = Runner::new(&ds, &cfg, 0);
        let stats = runner
            .train_epoch_betty(&ds, StrategyKind::Betty, 2)
            .unwrap();
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn evaluate_returns_probability() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let nodes: Vec<_> = ds.val_idx.iter().copied().take(20).collect();
        let acc = runner.evaluate(&ds, &nodes);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn mini_batch_epoch_runs() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let stats = runner.train_epoch_mini(&ds, 4).unwrap();
        assert_eq!(stats.num_steps, 4);
    }
}

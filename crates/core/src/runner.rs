//! High-level experiment facade: dataset + config → epochs.

use std::fmt;
use std::sync::{Arc, Mutex};

use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use betty_data::{Dataset, StorageIncident};
use betty_device::{Device, MemoryEstimator, ModelShape};
use betty_graph::{sample_batch_in, Batch, CsrGraph, NodeId};
use betty_nn::{Gat, Gcn, Gin, GnnModel, GraphSage, TrainState};

use betty_trace::{SpanKind, TraceRecorder};

use crate::config::{ExperimentConfig, ModelKind};
use crate::pipeline::{dataset_key, PipelineSpec, PlanMode, PlanPipeline, StagedBundle};
use crate::planner::{MemoryAwarePlanner, Plan, PlanError};
use crate::recovery::{RecoveryEvent, RecoveryLog};
use crate::stats::{EpochStats, StepStats};
use crate::strategy::{build_strategy, StrategyKind};
use crate::trainer::{TrainError, Trainer};
use crate::{aggregator_kind, eval};

/// Failure of a full planning-plus-training epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// No partition count satisfied the capacity constraint.
    Plan(PlanError),
    /// A step ran out of device memory and recovery was not attempted
    /// (either the caller used a non-recovering entry point or the
    /// retry budget is zero).
    Train(TrainError),
    /// Recovery was attempted but every retry failed. The chain root
    /// ([`std::error::Error::source`]) is the error from the *first*
    /// failed attempt, preserving what originally went wrong.
    RetryExhausted {
        /// Recovery attempts that were consumed.
        attempts: usize,
        /// The first attempt's error (the original failure).
        source: TrainError,
    },
    /// The numeric-anomaly rollback budget ran out: the sentinel kept
    /// catching a NaN/Inf loss or gradient after restoring the
    /// epoch-start snapshot. Unlike an OOM this is not a capacity
    /// problem, so no amount of re-partitioning can fix it — the run
    /// aborts (the CLI maps this to its own exit code).
    Anomaly {
        /// Rollbacks consumed before giving up.
        rollbacks: usize,
        /// The final, fatal anomaly
        /// ([`TrainError::NumericAnomaly`]).
        source: TrainError,
    },
    /// A durable checkpoint could not be written, read, or applied
    /// (I/O failure, corruption, or a config-fingerprint mismatch).
    Checkpoint(String),
    /// Every device of the elastic group was declared lost with
    /// unfinished work outstanding — there is no survivor to migrate
    /// onto, so the epoch cannot complete (the CLI maps this to its own
    /// exit code).
    DevicesExhausted(crate::multi::DevicesExhausted),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Plan(e) => write!(f, "planning failed: {e}"),
            RunError::Train(e) => write!(f, "training failed: {e}"),
            RunError::RetryExhausted { attempts, source } => write!(
                f,
                "training failed after {attempts} recovery attempts; original error: {source}"
            ),
            RunError::Anomaly { rollbacks, source } => write!(
                f,
                "numeric anomaly persisted after {rollbacks} rollbacks: {source}"
            ),
            RunError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
            RunError::DevicesExhausted(e) => write!(f, "elastic group failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Plan(e) => Some(e),
            RunError::Train(e) => Some(e),
            RunError::RetryExhausted { source, .. } => Some(source),
            RunError::Anomaly { source, .. } => Some(source),
            RunError::Checkpoint(_) => None,
            RunError::DevicesExhausted(e) => Some(e),
        }
    }
}

impl From<PlanError> for RunError {
    fn from(e: PlanError) -> Self {
        RunError::Plan(e)
    }
}

impl From<TrainError> for RunError {
    fn from(e: TrainError) -> Self {
        RunError::Train(e)
    }
}

/// Ties a model, trainer, planner, and sampler together for one experiment.
///
/// Each `train_epoch_*` call re-samples the full training batch (per-epoch
/// neighbor sampling, as DGL does), partitions it with the requested
/// strategy, and trains. See the [crate docs](crate) for an example.
pub struct Runner {
    config: ExperimentConfig,
    trainer: Trainer,
    planner: MemoryAwarePlanner,
    in_graph: Arc<CsrGraph>,
    sample_rng: Pcg64Mcg,
    seed: u64,
    cached_parts: Option<CachedParts>,
    /// Combined config + dataset-shape fingerprint captured at
    /// construction, stored into checkpoints so `--resume` rejects a
    /// checkpoint produced against a different dataset (same-config,
    /// different-data used to slip through the config-only fingerprint).
    dataset_fingerprint: u64,
    /// Partition-ahead pipeline staging future epochs' plans on
    /// background workers (`config.plan_ahead > 0` only). `None` means
    /// the next epoch plans synchronously; anything that perturbs the
    /// sampler RNG stream or the staged work's assumptions resets it.
    pipeline: Option<PlanPipeline>,
    epochs_run: usize,
    /// All-reduce link-stall injector, armed once per run from the
    /// config's fault plan so its seeded stream continues across epochs
    /// (mirrors the alloc/transfer injectors owned by the trainer).
    link_faults: Option<betty_device::LinkFaultInjector>,
    /// Storage fault injector shared with the paged feature store's
    /// chaos hook (`None` without storage faults in the plan). The store
    /// calls into it on every shard read; the runner drains its events
    /// into the recovery log at epoch boundaries.
    storage_faults: Option<Arc<Mutex<betty_device::StorageFaultInjector>>>,
    /// Scheduled `(shard, epoch)` payload corruptions from the fault
    /// plan, applied to the on-disk store at the start of the named
    /// epoch (entries are consumed as they fire).
    shard_corrupt: Vec<(usize, usize)>,
}

/// Adapts the device crate's seedable [`betty_device::StorageFaultInjector`]
/// onto the data crate's [`betty_data::StorageFaultHook`] (betty-data
/// cannot depend on betty-device, so the trait lives downstream and this
/// shim lives here).
struct StorageHookAdapter(Arc<Mutex<betty_device::StorageFaultInjector>>);

impl betty_data::StorageFaultHook for StorageHookAdapter {
    fn check_read(&mut self, shard: usize, attempt: usize) -> betty_data::ReadFault {
        let verdict = self
            .0
            .lock()
            .expect("storage fault injector lock poisoned")
            .check_read(shard, attempt);
        betty_data::ReadFault {
            fail: verdict.fail,
            stall_sec: verdict.stall_sec,
        }
    }

    fn backoff_jitter(&mut self) -> f64 {
        self.0
            .lock()
            .expect("storage fault injector lock poisoned")
            .backoff_jitter()
    }
}

/// A reusable output-node assignment from a previous epoch's plan.
///
/// The output set is the training split — identical every epoch — so the
/// grouping from one epoch's REG cut remains *valid* on the next epoch's
/// re-sampled batch (only slightly stale as an optimum). Reusing it
/// amortizes Betty's partitioning overhead (§7 future work).
struct CachedParts {
    strategy: StrategyKind,
    k: usize,
    parts: Vec<Vec<NodeId>>,
    epochs_used: usize,
}

/// One epoch's batch + plan, as produced by [`Runner::acquire_plan`] —
/// either consumed from the partition-ahead pipeline or planned
/// synchronously (in which case the two timing/accounting extras are 0).
struct EpochPlanSource {
    batch: Batch,
    plan: Result<Plan, PlanError>,
    /// Planning seconds hidden off the critical path
    /// ([`EpochStats::plan_ahead_overlap_sec`]).
    overlap_sec: f64,
    /// Bytes charged to the `plan ahead` ledger category
    /// ([`EpochStats::plan_ahead_staged_bytes`]).
    staged_bytes: usize,
}

impl fmt::Debug for Runner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runner")
            .field("config", &self.config)
            .finish()
    }
}

/// Host bytes staging one epoch: raw features plus every micro-batch's
/// block structure (3 values per edge).
fn host_staging_bytes(dataset: &Dataset, micro_batches: &[Batch]) -> usize {
    dataset.features.size_bytes()
        + micro_batches
            .iter()
            .map(|mb| mb.total_edges() * 3 * betty_device::BYTES_PER_VALUE)
            .sum::<usize>()
}

/// Calibrated per-node LSTM intermediate constant for *this* autograd
/// implementation: each unrolled cell step tapes the gathered input (d),
/// the concat (2d), fused gates twice (8d), four slices (4d), four
/// activations (4d) and five state ops (5d) — 24 values per node per step.
/// The paper's PyTorch constant is 18 and explicitly
/// implementation-dependent (§4.4.3); Table 7 reports our estimation error
/// under this constant.
pub const LSTM_TAPE_CONSTANT: usize = 24;

impl Runner {
    /// Builds the model, device, estimator and planner for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`ExperimentConfig::validate`].
    pub fn new(dataset: &Dataset, config: &ExperimentConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid config: {e}"));
        let mut model_rng = Pcg64Mcg::seed_from_u64(seed);
        let model: Box<dyn GnnModel> = match config.model {
            ModelKind::GraphSage => Box::new(GraphSage::new(
                dataset.feature_dim(),
                config.hidden_dim,
                dataset.num_classes,
                config.num_layers(),
                config.aggregator,
                config.dropout,
                &mut model_rng,
            )),
            ModelKind::Gat => Box::new(Gat::new(
                dataset.feature_dim(),
                config.hidden_dim,
                dataset.num_classes,
                config.num_layers(),
                config.num_heads,
                config.dropout,
                &mut model_rng,
            )),
            ModelKind::Gcn => Box::new(Gcn::new(
                dataset.feature_dim(),
                config.hidden_dim,
                dataset.num_classes,
                config.num_layers(),
                config.dropout,
                &mut model_rng,
            )),
            ModelKind::Gin => Box::new(Gin::new(
                dataset.feature_dim(),
                config.hidden_dim,
                dataset.num_classes,
                config.num_layers(),
                config.dropout,
                &mut model_rng,
            )),
        };
        let estimator_aggregator = match config.model {
            // GCN/GIN fused aggregations have the same footprint shape as
            // fused Mean/Sum.
            ModelKind::GraphSage | ModelKind::Gcn | ModelKind::Gin => {
                aggregator_kind(config.aggregator)
            }
            ModelKind::Gat => betty_device::AggregatorKind::Attention {
                heads: config.num_heads,
            },
        };
        let shape = ModelShape {
            in_dim: dataset.feature_dim(),
            hidden_dim: config.hidden_dim,
            num_classes: dataset.num_classes,
            num_layers: config.num_layers(),
            aggregator: estimator_aggregator,
            params_gnn: model.gnn_param_count(),
            params_agg: model.agg_param_count(),
        };
        let estimator = MemoryEstimator::new(shape)
            .with_lstm_constant(LSTM_TAPE_CONSTANT)
            .with_feature_dtype(config.precision)
            .with_activation_dtype(config.precision);
        let planner =
            MemoryAwarePlanner::new(estimator, config.capacity_bytes, config.max_partitions)
                .with_prefetch_staging(config.prefetch)
                .with_feature_cache(dataset.features.cache_reservation_bytes());
        let mut trainer = Trainer::new(
            model,
            config.learning_rate,
            Device::new(config.capacity_bytes),
            seed.wrapping_add(1),
        );
        trainer.set_pooling(config.pool);
        trainer.set_sentinel(config.sentinel);
        trainer.set_precision(config.precision);
        let mut link_faults = None;
        let mut storage_faults = None;
        let mut shard_corrupt = Vec::new();
        if let Some(fault_plan) = &config.fault_plan {
            trainer.arm_faults(fault_plan);
            link_faults = Some(fault_plan.link_injector());
            if fault_plan.has_storage_faults() {
                let injector = Arc::new(Mutex::new(fault_plan.storage_injector()));
                dataset
                    .features
                    .arm_storage_faults(Box::new(StorageHookAdapter(Arc::clone(&injector))));
                storage_faults = Some(injector);
                shard_corrupt = fault_plan.shard_corrupt.clone();
            } else {
                // The store outlives any one runner (datasets are shared);
                // a storage-quiet plan must clear a predecessor's hook so
                // an armed-but-inert run stays byte-identical to no plan.
                dataset.features.disarm_storage_faults();
            }
        } else {
            dataset.features.disarm_storage_faults();
        }
        dataset.features.set_max_io_retries(config.retry.max_io_retries);
        Self {
            config: config.clone(),
            trainer,
            planner,
            in_graph: Arc::new(dataset.graph.reverse()),
            sample_rng: Pcg64Mcg::seed_from_u64(seed.wrapping_add(2)),
            seed,
            cached_parts: None,
            dataset_fingerprint: config.fingerprint_for_dataset(
                dataset.feature_dim(),
                dataset.num_classes,
                dataset.num_nodes(),
            ),
            pipeline: None,
            epochs_run: 0,
            link_faults,
            storage_faults,
            shard_corrupt,
        }
    }

    /// Starts trace recording on the underlying trainer (spans, device
    /// memory timeline, estimator-drift records). Tracing never changes
    /// the math — see [`Trainer::enable_tracing`].
    pub fn enable_tracing(&mut self) {
        self.trainer.enable_tracing();
    }

    /// Stops trace recording, returning everything captured since
    /// [`Runner::enable_tracing`], if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.trainer.disable_tracing()
    }

    /// Stamps the recorder with this epoch's ordinal; every
    /// `train_epoch_*` entry point calls this first so spans and drift
    /// records carry monotone epoch ids.
    fn begin_traced_epoch(&mut self) {
        let epoch = self.epochs_run;
        self.epochs_run += 1;
        if let Some(tr) = self.trainer.trace_mut() {
            tr.set_epoch(epoch);
        }
    }

    /// Epoch preamble shared by every `train_epoch_*` entry point:
    /// stamps the trace epoch, then applies any scheduled shard
    /// corruption due this epoch to the on-disk feature store.
    fn begin_epoch(&mut self, dataset: &Dataset) {
        self.begin_traced_epoch();
        self.apply_scheduled_corruption(dataset);
    }

    /// Fires the fault plan's `(shard, epoch)` corruption schedule for
    /// the epoch that just began: flips one payload byte of each named
    /// shard on disk (and evicts it from the page cache), so the next
    /// read genuinely fails its CRC and must repair from parity. A noop
    /// for dense stores (the CLI validates the flag against the backend).
    fn apply_scheduled_corruption(&mut self, dataset: &Dataset) {
        if self.shard_corrupt.is_empty() {
            return;
        }
        let epoch = self.epochs_run - 1; // begin_traced_epoch just bumped it
        let mut remaining = Vec::with_capacity(self.shard_corrupt.len());
        for &(shard, at_epoch) in &self.shard_corrupt {
            if at_epoch != epoch {
                remaining.push((shard, at_epoch));
                continue;
            }
            if dataset.features.corrupt_shard_byte(shard).is_ok() {
                if let Some(inj) = &self.storage_faults {
                    inj.lock()
                        .expect("storage fault injector lock poisoned")
                        .note_corruption(shard, epoch);
                }
            }
        }
        self.shard_corrupt = remaining;
    }

    /// Drains storage-fault events (from the seeded injector) and
    /// repair/retry incidents (from the feature store) accumulated since
    /// the last call — into `log` when recovering, and into the trace
    /// stream when tracing. Returns how many *injected* fault events
    /// were drained (for [`EpochStats::injected_faults`]).
    fn drain_storage_events(&mut self, dataset: &Dataset, mut log: Option<&mut RecoveryLog>) -> usize {
        let mut injected = 0usize;
        if let Some(inj) = &self.storage_faults {
            let events = betty_device::FaultEvents::drain_events(
                &mut *inj.lock().expect("storage fault injector lock poisoned"),
            );
            for event in events {
                injected += 1;
                if let Some(tr) = self.trainer.trace_mut() {
                    let (kind, detail) = match &event {
                        betty_device::FaultEvent::StorageIoError { shard, attempt } => (
                            "storage_io",
                            format!("shard {shard}: transient read error on attempt {attempt}"),
                        ),
                        betty_device::FaultEvent::StorageStall { shard, stall_sec } => (
                            "storage_stall",
                            format!("shard {shard}: +{stall_sec:.3}s read stall"),
                        ),
                        betty_device::FaultEvent::ShardCorrupted { shard, epoch } => (
                            "shard_corrupt",
                            format!("shard {shard}: payload byte flipped before epoch {epoch}"),
                        ),
                        _ => ("storage_fault", format!("{event:?}")),
                    };
                    tr.record_fault(kind, detail);
                }
                if let Some(log) = log.as_deref_mut() {
                    log.record(RecoveryEvent::Fault(event));
                }
            }
        }
        for incident in dataset.features.drain_storage_incidents() {
            match incident {
                StorageIncident::IoRetry {
                    shard,
                    attempt,
                    backoff_sec,
                } => {
                    if let Some(log) = log.as_deref_mut() {
                        log.record(RecoveryEvent::IoRetry {
                            shard,
                            attempt,
                            backoff_sec,
                        });
                    }
                }
                StorageIncident::ShardRepaired {
                    shard,
                    group,
                    repair_bytes,
                } => {
                    if self.trainer.tracing_enabled() {
                        let sec = self
                            .trainer
                            .feature_link()
                            .time_for(repair_bytes as usize);
                        if let Some(tr) = self.trainer.trace_mut() {
                            let at = tr.now_sec();
                            tr.record_span(SpanKind::StorageRepair, Some(shard), at, sec);
                        }
                    }
                    if let Some(log) = log.as_deref_mut() {
                        log.record(RecoveryEvent::ShardRepaired { shard, group });
                    }
                }
            }
        }
        injected
    }

    /// [`Runner::sample_full_batch`] wrapped in a `sample` span when
    /// tracing.
    fn traced_sample_full_batch(&mut self, dataset: &Dataset) -> Batch {
        if !self.trainer.tracing_enabled() {
            return self.sample_full_batch(dataset);
        }
        let start_sec = self.trainer.trace_mut().map_or(0.0, |t| t.now_sec());
        let wall = std::time::Instant::now();
        let batch = self.sample_full_batch(dataset);
        let dur = wall.elapsed().as_secs_f64();
        if let Some(tr) = self.trainer.trace_mut() {
            tr.record_span(SpanKind::Sample, None, start_sec, dur);
        }
        batch
    }

    /// Records `partition` and `plan` spans from the wall times the
    /// planner already measured (`partition_sec` is the REG build + cut,
    /// `extraction_sec` the micro-batch restriction + estimation).
    fn record_plan_spans(&mut self, plan: &Plan) {
        if let Some(tr) = self.trainer.trace_mut() {
            let at = tr.now_sec();
            let start = at - plan.extraction_sec - plan.partition_sec;
            tr.record_span(SpanKind::Partition, None, start, plan.partition_sec);
            tr.record_span(
                SpanKind::Plan,
                None,
                start + plan.partition_sec,
                plan.extraction_sec,
            );
        }
    }

    /// Fills [`EpochStats::estimated_peak_bytes`] /
    /// [`EpochStats::estimator_drift`] from a plan's per-micro-batch
    /// estimates and the measured step peaks, and — when tracing — emits
    /// one [`betty_trace::DriftRecord`] per micro-batch. The planner
    /// filters empty parts, so `plan.estimates` and the executed steps
    /// align one to one.
    fn annotate_drift(&mut self, stats: &mut EpochStats, steps: &[StepStats], plan: &Plan) {
        debug_assert_eq!(steps.len(), plan.estimates.len());
        // Steps consumed their global ids during the epoch; recover the
        // first one from the trainer's monotone counter.
        let base_step = self.trainer.global_step() - steps.len();
        let mut max_estimated = 0usize;
        let mut worst_ratio = 0.0f64;
        for (i, (step, estimate)) in steps.iter().zip(&plan.estimates).enumerate() {
            let estimated = estimate.peak_bytes();
            max_estimated = max_estimated.max(estimated);
            let ratio = step.peak_bytes as f64 / estimated.max(1) as f64;
            worst_ratio = worst_ratio.max(ratio);
            if let Some(tr) = self.trainer.trace_mut() {
                tr.record_drift(base_step + i, estimated, step.peak_bytes);
            }
        }
        stats.estimated_peak_bytes = max_estimated;
        stats.estimator_drift = worst_ratio;
    }

    /// Runs a plan's micro-batches and annotates the stats with the
    /// estimator-drift comparison.
    fn run_planned(&mut self, dataset: &Dataset, plan: &Plan) -> Result<EpochStats, TrainError> {
        let (mut stats, steps) =
            self.run_micro_batches_with_steps(dataset, &plan.micro_batches)?;
        self.annotate_drift(&mut stats, &steps, plan);
        Ok(stats)
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The underlying trainer (device, transfer model, model).
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Mutable trainer access (e.g. to restore a checkpoint into the
    /// model).
    pub fn trainer_mut(&mut self) -> &mut Trainer {
        &mut self.trainer
    }

    /// The memory-aware planner (and its estimator).
    pub fn planner(&self) -> &MemoryAwarePlanner {
        &self.planner
    }

    /// Updates the learning rate mid-training (for LR schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.trainer.set_learning_rate(lr);
    }

    /// Samples the full training batch with the configured fanouts.
    pub fn sample_full_batch(&mut self, dataset: &Dataset) -> Batch {
        // Direct sampling advances the RNG cursor the pipeline's staged
        // batches were drawn ahead of — they are now the wrong stream.
        self.pipeline = None;
        sample_batch_in(
            &self.in_graph,
            &dataset.train_idx,
            &self.config.fanouts,
            &mut self.sample_rng,
        )
    }

    /// Samples a batch for an arbitrary seed set (e.g. mini-batch chunks).
    pub fn sample_batch_for(&mut self, seeds: &[NodeId]) -> Batch {
        self.pipeline = None; // same cursor argument as sample_full_batch
        sample_batch_in(
            &self.in_graph,
            seeds,
            &self.config.fanouts,
            &mut self.sample_rng,
        )
    }

    /// Whether a partition-ahead pipeline is currently alive (staged
    /// work exists or will be requested next epoch). False at
    /// `plan_ahead: 0`, after any invalidation (recovery retry, direct
    /// sampling, evaluation, session import), and under a single worker
    /// thread.
    pub fn plan_ahead_active(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Hands out this epoch's staged bundle from the partition-ahead
    /// pipeline, spawning or replacing the pipeline as needed. `None`
    /// means "plan synchronously": depth 0, a single worker thread, or a
    /// dead driver (a panicked worker); the last case also resets the
    /// pipeline so the synchronous path resumes from the unconsumed RNG
    /// cursor.
    fn pipelined_bundle(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        mode: PlanMode,
    ) -> Option<(StagedBundle, f64, std::time::Instant)> {
        let depth = self.config.plan_ahead;
        if depth == 0 || betty_runtime::configured_threads() <= 1 {
            self.pipeline = None;
            return None;
        }
        let key = dataset_key(dataset);
        if self
            .pipeline
            .as_ref()
            .is_some_and(|p| !p.matches(strategy, mode, key, depth))
        {
            // Strategy/mode/dataset changed between epochs: every staged
            // bundle answers the wrong question. The RNG cursor is safe —
            // it only advances at consumption.
            self.pipeline = None;
        }
        if self.pipeline.is_none() {
            self.pipeline = Some(PlanPipeline::spawn(PipelineSpec {
                graph: Arc::clone(&self.in_graph),
                seeds: Arc::new(dataset.train_idx.clone()),
                fanouts: self.config.fanouts.clone(),
                planner: self.planner.clone(),
                strategy,
                seed: self.seed,
                mode,
                depth,
                rng_state: self.sample_rng.state(),
                dataset_key: key,
                threads: betty_runtime::configured_threads(),
            }));
        }
        let pipeline = self.pipeline.as_mut().expect("just ensured");
        match pipeline.next_bundle() {
            Some((bundle, wait_sec, requested_at)) => {
                // Keep up to `depth` future epochs staged, unless the
                // staged bytes already exceed the device budget (Eq. 5
                // feasibility: shrink pipeline depth before memory
                // pressure can escalate K).
                pipeline.top_up(self.config.capacity_bytes);
                Some((bundle, wait_sec, requested_at))
            }
            None => {
                self.pipeline = None;
                None
            }
        }
    }

    /// Records the trace spans for a consumed staged bundle — back-dated
    /// onto the recorder clock at the instants the background work
    /// actually ran — and returns the planning seconds this epoch hid
    /// off its critical path (`prep time − handoff wait`, clamped at 0).
    ///
    /// The `plan_ahead` span runs from the instant the bundle's request
    /// was issued (on *this* thread, before the overlapped epoch began
    /// training) to the consumption instant, so by construction it
    /// contains every forward/backward span of the epoch that trained
    /// while this bundle was being staged.
    fn consume_bundle_spans(
        &mut self,
        bundle: &StagedBundle,
        wait_sec: f64,
        requested_at: std::time::Instant,
    ) -> f64 {
        let plan_sec = bundle
            .plan
            .as_ref()
            .map_or(0.0, |p| p.partition_sec + p.extraction_sec);
        if let Some(tr) = self.trainer.trace_mut() {
            let window_start = tr.sec_at(requested_at);
            let sample_start = tr.sec_at(bundle.sample_started);
            tr.record_span(SpanKind::Sample, None, sample_start, bundle.sample_sec);
            if let Ok(plan) = &bundle.plan {
                let finished = tr.sec_at(bundle.plan_finished);
                let start = (finished - plan.extraction_sec - plan.partition_sec).max(0.0);
                tr.record_span(SpanKind::Partition, None, start, plan.partition_sec);
                tr.record_span(
                    SpanKind::Plan,
                    None,
                    start + plan.partition_sec,
                    plan.extraction_sec,
                );
            }
            let now = tr.now_sec();
            tr.record_span(
                SpanKind::PlanAhead,
                None,
                window_start,
                (now - window_start).max(0.0),
            );
        }
        (bundle.sample_sec + plan_sec - wait_sec).max(0.0)
    }

    /// Drops the partition-ahead pipeline because a recovery retry is
    /// about to replan at an escalated `K` / shrunk capacity: the staged
    /// bundles were planned under pre-failure assumptions that just
    /// OOM'd (or preceded a numeric rollback), so they are discarded and
    /// the event is logged. The sampler cursor is unaffected — it only
    /// advances when a bundle is consumed — so the retry (and the
    /// pipeline restart next epoch) continues the exact synchronous
    /// stream.
    fn invalidate_pipeline_for_retry(&mut self, log: &mut RecoveryLog) {
        if let Some(p) = self.pipeline.take() {
            log.record(RecoveryEvent::PlanAheadInvalidated {
                staged: p.in_flight(),
            });
        }
    }

    /// Produces this epoch's batch and plan — from the partition-ahead
    /// pipeline when one is running, synchronously otherwise. Both paths
    /// draw the same batch from the same RNG cursor and plan it with the
    /// same strategy/capacity, so the result is bit-identical; only
    /// where the wall-clock time was spent differs. The staged path also
    /// charges the bundle's transfer bytes to the `plan ahead` ledger
    /// category (released immediately — the charge is an epoch-boundary
    /// feasibility probe, not a persistent residency).
    fn acquire_plan(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        mode: PlanMode,
    ) -> EpochPlanSource {
        if let Some((bundle, wait_sec, requested_at)) =
            self.pipelined_bundle(dataset, strategy, mode)
        {
            let overlap_sec = self.consume_bundle_spans(&bundle, wait_sec, requested_at);
            let staged_bytes = self.trainer.charge_plan_ahead(bundle.staged_bytes);
            // Adopt the post-sample cursor: synchronous sampling (or a
            // restarted pipeline) continues the exact same stream.
            self.sample_rng = Pcg64Mcg::new(bundle.rng_after);
            return EpochPlanSource {
                batch: bundle.batch,
                plan: bundle.plan,
                overlap_sec,
                staged_bytes,
            };
        }
        let batch = self.traced_sample_full_batch(dataset);
        let plan = match mode {
            PlanMode::Fixed(k) => Ok(self.plan_fixed(&batch, strategy, k)),
            PlanMode::Auto => self.plan_auto(&batch, strategy),
        };
        if let Ok(plan) = &plan {
            self.record_plan_spans(plan);
        }
        EpochPlanSource {
            batch,
            plan,
            overlap_sec: 0.0,
            staged_bytes: 0,
        }
    }

    /// Splits a batch into exactly `k` micro-batches using `strategy`.
    pub fn plan_fixed(&self, batch: &Batch, strategy: StrategyKind, k: usize) -> Plan {
        self.planner
            .plan_fixed(batch, build_strategy(strategy, self.seed).as_ref(), k)
    }

    /// Memory-aware planning: smallest `K` fitting the configured capacity.
    ///
    /// # Errors
    ///
    /// [`PlanError`] if no partition count fits.
    pub fn plan_auto(&self, batch: &Batch, strategy: StrategyKind) -> Result<Plan, PlanError> {
        self.planner
            .plan(batch, build_strategy(strategy, self.seed).as_ref(), 1)
    }

    /// Runs one gradient-accumulated epoch over pre-built micro-batches,
    /// double-buffering host→device transfers when
    /// [`ExperimentConfig::prefetch`] is on (the default). Both paths
    /// produce bit-identical losses; prefetch only changes timing and the
    /// device-memory schedule.
    fn run_micro_batches(
        &mut self,
        dataset: &Dataset,
        micro_batches: &[Batch],
    ) -> Result<EpochStats, TrainError> {
        self.run_micro_batches_with_steps(dataset, micro_batches)
            .map(|(stats, _)| stats)
    }

    /// Like [`Runner::run_micro_batches`], keeping the per-step stats the
    /// drift annotation compares against the plan's estimates.
    fn run_micro_batches_with_steps(
        &mut self,
        dataset: &Dataset,
        micro_batches: &[Batch],
    ) -> Result<(EpochStats, Vec<StepStats>), TrainError> {
        if self.config.prefetch {
            self.trainer
                .micro_batch_epoch_prefetched_with_steps(dataset, micro_batches)
        } else {
            self.trainer
                .micro_batch_epoch_with_steps(dataset, micro_batches)
        }
    }

    /// One epoch of micro-batch training with a fixed partition count.
    ///
    /// With [`ExperimentConfig::plan_ahead`] `> 0` (and more than one
    /// worker thread) the batch and plan come pre-staged from the
    /// partition-ahead pipeline; results are bit-identical to the
    /// synchronous path.
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if a micro-batch exceeds capacity.
    pub fn train_epoch_betty(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        k: usize,
    ) -> Result<EpochStats, TrainError> {
        self.begin_epoch(dataset);
        let source = self.acquire_plan(dataset, strategy, PlanMode::Fixed(k));
        let plan = source.plan.expect("fixed-K planning is infallible");
        let mut stats = self.run_planned(dataset, &plan)?;
        stats.host_bytes = host_staging_bytes(dataset, &plan.micro_batches)
            + source.batch.total_edges() * 3 * betty_device::BYTES_PER_VALUE;
        stats.plan_ahead_overlap_sec = source.overlap_sec;
        stats.plan_ahead_staged_bytes = source.staged_bytes;
        Ok(stats)
    }

    /// One epoch with memory-aware partition-count selection; returns the
    /// epoch stats and the chosen `K`.
    ///
    /// # Errors
    ///
    /// [`RunError`] if planning or training fails.
    pub fn train_epoch_auto(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
    ) -> Result<(EpochStats, usize), RunError> {
        self.begin_epoch(dataset);
        let source = self.acquire_plan(dataset, strategy, PlanMode::Auto);
        let plan = source.plan?;
        let mut stats = self.run_planned(dataset, &plan)?;
        stats.host_bytes = host_staging_bytes(dataset, &plan.micro_batches)
            + source.batch.total_edges() * 3 * betty_device::BYTES_PER_VALUE;
        stats.plan_ahead_overlap_sec = source.overlap_sec;
        stats.plan_ahead_staged_bytes = source.staged_bytes;
        Ok((stats, plan.micro_batches.len()))
    }

    /// Like [`Runner::train_epoch_auto`], but with checkpointed OOM
    /// recovery.
    ///
    /// Before the first attempt the trainable state (parameters,
    /// optimizer moments, dropout RNG) is snapshotted. If a step OOMs —
    /// genuinely or via an armed [`betty_device::FaultPlan`] — the
    /// device's charges are released, any partially accumulated
    /// gradients are discarded with the restored snapshot, and planning
    /// escalates: `K ← max(K + 1, ceil(K · growth))` against a capacity
    /// shrunk by the compounding headroom fraction (see
    /// [`RetryPolicy`](crate::RetryPolicy)). Up to
    /// `config.retry.max_retries` retries are attempted before giving
    /// up. Every injected fault and recovery action is appended to
    /// `log`; the returned stats carry retry/fault counters.
    ///
    /// # Errors
    ///
    /// * [`RunError::Plan`] if the *first* plan fails (nothing to
    ///   recover from);
    /// * [`RunError::Train`] if the first attempt fails and the retry
    ///   budget is zero (recovery disabled);
    /// * [`RunError::RetryExhausted`] once retries run out, carrying
    ///   the original failure as its
    ///   [`source`](std::error::Error::source).
    pub fn train_epoch_auto_recovering(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        log: &mut RecoveryLog,
    ) -> Result<(EpochStats, usize), RunError> {
        self.begin_epoch(dataset);
        let policy = self.config.retry.clone();
        let capacity = self.config.capacity_bytes;
        // The first attempt's batch + plan come from `acquire_plan` —
        // staged by the partition-ahead pipeline when one is running,
        // synchronous otherwise, bit-identical either way (attempt 0
        // plans from K = 1 against the full capacity, exactly what the
        // pipeline's auto mode stages). Retries replan inside the loop.
        let source = self.acquire_plan(dataset, strategy, PlanMode::Auto);
        let batch = source.batch;
        let mut pending = Some(source.plan);
        let snapshot = self.trainer.snapshot();
        let strategy_impl = build_strategy(strategy, self.seed);
        let mut injected_faults = 0usize;
        let mut attempt = 0usize; // failed OOM attempts so far
        let mut anomaly_rollbacks = 0usize;
        let mut initial_k = 1usize;
        let mut original: Option<TrainError> = None;
        loop {
            let planning_capacity = policy.planning_capacity(capacity, attempt);
            let plan = match pending.take() {
                // Attempt 0: spans were already recorded at acquisition.
                Some(Ok(plan)) => plan,
                // The *first* plan failed (nothing to recover from).
                Some(Err(e)) => return Err(RunError::Plan(e)),
                None => match self.planner.plan_with_capacity(
                    &batch,
                    strategy_impl.as_ref(),
                    initial_k,
                    planning_capacity,
                ) {
                    Ok(plan) => {
                        self.record_plan_spans(&plan);
                        plan
                    }
                    // Escalation planned itself into a corner (headroom or
                    // K growth exceeded what max_partitions can satisfy):
                    // surface the original OOM, not the planning artifact.
                    Err(e) => match original {
                        Some(source) => {
                            log.record(RecoveryEvent::Exhausted { attempts: attempt });
                            return Err(RunError::RetryExhausted {
                                attempts: attempt,
                                source,
                            });
                        }
                        None => return Err(RunError::Plan(e)),
                    },
                },
            };
            let k = plan.micro_batches.len();
            match self.run_planned(dataset, &plan) {
                Ok(mut stats) => {
                    for event in self.trainer.drain_fault_events() {
                        injected_faults += 1;
                        log.record(RecoveryEvent::Fault(event));
                    }
                    injected_faults += self.drain_storage_events(dataset, Some(log));
                    if attempt > 0 {
                        log.record(RecoveryEvent::Recovered {
                            attempts: attempt,
                            final_k: k,
                        });
                    }
                    stats.host_bytes = host_staging_bytes(dataset, &plan.micro_batches)
                        + batch.total_edges() * 3 * betty_device::BYTES_PER_VALUE;
                    stats.oom_retries = attempt;
                    stats.anomaly_rollbacks = anomaly_rollbacks;
                    stats.injected_faults = injected_faults;
                    stats.plan_ahead_overlap_sec = source.overlap_sec;
                    stats.plan_ahead_staged_bytes = source.staged_bytes;
                    return Ok((stats, k));
                }
                Err(err) => {
                    self.trainer.release_device();
                    for event in self.trainer.drain_fault_events() {
                        injected_faults += 1;
                        log.record(RecoveryEvent::Fault(event));
                    }
                    injected_faults += self.drain_storage_events(dataset, Some(log));
                    match err {
                        // A numeric anomaly is not a capacity problem:
                        // restore the snapshot and retry the *same* plan
                        // under its own (small) budget. Injected NaNs
                        // fire once — step indices are monotone — so the
                        // retry replays clean and bit-identical to a
                        // never-faulted epoch; a genuine divergence
                        // reproduces deterministically and aborts once
                        // the budget is spent.
                        TrainError::NumericAnomaly {
                            step,
                            kind,
                            injected,
                        } => {
                            if anomaly_rollbacks >= policy.max_anomaly_retries {
                                log.record(RecoveryEvent::AnomalyAbort {
                                    rollbacks: anomaly_rollbacks,
                                    step,
                                    kind,
                                });
                                return Err(RunError::Anomaly {
                                    rollbacks: anomaly_rollbacks,
                                    source: err,
                                });
                            }
                            anomaly_rollbacks += 1;
                            log.record(RecoveryEvent::AnomalyRollback {
                                attempt: anomaly_rollbacks,
                                step,
                                kind,
                                injected,
                            });
                            self.invalidate_pipeline_for_retry(log);
                            self.trainer.restore(&snapshot);
                            initial_k = k.max(1);
                        }
                        TrainError::StepOom {
                            step,
                            phase,
                            ref source,
                        } => {
                            if attempt >= policy.max_retries {
                                if attempt == 0 {
                                    // Recovery disabled: the plain
                                    // training error.
                                    return Err(RunError::Train(err));
                                }
                                log.record(RecoveryEvent::Exhausted { attempts: attempt });
                                return Err(RunError::RetryExhausted {
                                    attempts: attempt,
                                    source: original.unwrap_or(err),
                                });
                            }
                            attempt += 1;
                            let next_k = policy.escalate_k(k).min(self.config.max_partitions);
                            log.record(RecoveryEvent::OomRetry {
                                attempt,
                                step,
                                phase,
                                injected: source.injected,
                                failed_k: k,
                                next_k,
                                planning_capacity: policy.planning_capacity(capacity, attempt),
                            });
                            original.get_or_insert(err);
                            self.invalidate_pipeline_for_retry(log);
                            self.trainer.restore(&snapshot);
                            initial_k = next_k;
                        }
                        // Storage damage is not a capacity problem:
                        // re-partitioning cannot resurrect a dead shard
                        // (retry/backoff and parity repair already ran
                        // *inside* the store). Abort with the structured
                        // error so the CLI names the shard and offset.
                        TrainError::Storage { .. } => return Err(RunError::Train(err)),
                    }
                }
            }
        }
    }

    /// Trains one effective batch from pre-built micro-batches (gradient
    /// accumulation + single optimizer step). Benches use this to measure
    /// a specific plan's micro-batches directly.
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if a micro-batch exceeds capacity.
    pub fn train_micro_batches(
        &mut self,
        dataset: &Dataset,
        micro_batches: &[Batch],
    ) -> Result<EpochStats, TrainError> {
        self.begin_epoch(dataset);
        let mut stats = self.run_micro_batches(dataset, micro_batches)?;
        stats.host_bytes = host_staging_bytes(dataset, micro_batches);
        Ok(stats)
    }

    /// Like [`Runner::train_epoch_betty`], but reuses the previous epoch's
    /// output-node grouping for up to `refresh_every - 1` epochs before
    /// re-partitioning — amortizing the REG construction + cut cost, which
    /// is valid because the output set (the training split) is identical
    /// across epochs. Returns the epoch stats and whether this epoch paid
    /// for a fresh partitioning.
    ///
    /// This is the degenerate point of the partition-ahead design space:
    /// where [`ExperimentConfig::plan_ahead`] hides each epoch's *own*
    /// partitioning under the previous epoch's compute (exact plans,
    /// overlapped), caching is "depth ∞ with reuse" — it skips the
    /// partitioning entirely and accepts a slightly stale cut. The two
    /// compose trivially: a cached epoch samples synchronously, so it
    /// simply resets any running pipeline.
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if a micro-batch exceeds capacity.
    ///
    /// # Panics
    ///
    /// Panics if `refresh_every == 0`.
    pub fn train_epoch_betty_cached(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        k: usize,
        refresh_every: usize,
    ) -> Result<(EpochStats, bool), TrainError> {
        assert!(refresh_every > 0, "refresh_every must be positive");
        self.begin_epoch(dataset);
        let batch = self.traced_sample_full_batch(dataset);
        let reusable = self.cached_parts.as_ref().is_some_and(|c| {
            c.strategy == strategy && c.k == k && c.epochs_used < refresh_every
        });
        let fresh = !reusable;
        // Kept on fresh epochs: its estimates were computed for *this*
        // batch, so the drift annotation is meaningful. On cached epochs
        // the stale plan's estimates don't describe the re-sampled batch
        // and the drift fields stay 0.
        let mut fresh_plan = None;
        if fresh {
            let plan = self.plan_fixed(&batch, strategy, k);
            self.record_plan_spans(&plan);
            self.cached_parts = Some(CachedParts {
                strategy,
                k,
                parts: plan.parts.clone(),
                epochs_used: 0,
            });
            fresh_plan = Some(plan);
        }
        let cache = self.cached_parts.as_mut().expect("just ensured");
        cache.epochs_used += 1;
        // Restrict all K parts concurrently (same order-preserving helper
        // the planner uses; results are identical to the serial loop).
        let active: Vec<&Vec<NodeId>> = cache.parts.iter().filter(|p| !p.is_empty()).collect();
        let micro_batches: Vec<Batch> = betty_runtime::parallel_map(
            active.len(),
            betty_runtime::configured_threads(),
            |i| batch.restrict(active[i]),
        );
        let (mut stats, steps) = self.run_micro_batches_with_steps(dataset, &micro_batches)?;
        if let Some(plan) = &fresh_plan {
            self.annotate_drift(&mut stats, &steps, plan);
        }
        stats.host_bytes = host_staging_bytes(dataset, &micro_batches)
            + batch.total_edges() * 3 * betty_device::BYTES_PER_VALUE;
        Ok((stats, fresh))
    }

    /// One epoch of simulated data-parallel training on a device group
    /// (the paper's multi-GPU future work, §7): micro-batches are
    /// LPT-scheduled across devices by estimated work, gradients are
    /// ring-all-reduced (numerically identical to single-device
    /// accumulation), and the wall time is the slowest device plus the
    /// synchronization cost.
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if a micro-batch exceeds capacity.
    pub fn train_epoch_multi_device(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        k: usize,
        group: &crate::multi::DeviceGroup,
    ) -> Result<crate::multi::MultiDeviceEpoch, TrainError> {
        self.begin_epoch(dataset);
        let batch = self.traced_sample_full_batch(dataset);
        let plan = self.plan_fixed(&batch, strategy, k);
        self.record_plan_spans(&plan);
        // Work proxy: total edges of each micro-batch's block stack.
        let work: Vec<f64> = plan
            .micro_batches
            .iter()
            .map(|mb| mb.total_edges() as f64)
            .collect();
        let assignment = crate::multi::lpt_assignment(&work, group.num_devices);
        let (mut combined, steps) = self
            .trainer
            .micro_batch_epoch_with_steps(dataset, &plan.micro_batches)?;
        self.annotate_drift(&mut combined, &steps, &plan);
        let per_device = crate::multi::fold_by_device(&steps, &assignment, group.num_devices);
        let grad_bytes =
            self.trainer.model().total_param_count() * betty_device::BYTES_PER_VALUE;
        let allreduce_sec = group.allreduce_sec(grad_bytes, group.num_devices);
        if let Some(tr) = self.trainer.trace_mut() {
            // Simulated ring all-reduce: the span carries the modelled
            // synchronization seconds.
            let at = tr.now_sec();
            tr.record_span(SpanKind::Allreduce, None, at, allreduce_sec);
        }
        let wall = per_device
            .iter()
            .map(EpochStats::total_sec)
            .fold(0.0, f64::max)
            + allreduce_sec;
        Ok(crate::multi::MultiDeviceEpoch {
            combined,
            per_device,
            assignment,
            allreduce_sec,
            health: vec![crate::multi::DeviceHealth::Healthy; group.num_devices],
            live_ranks: group.num_devices,
            sync_overhead_sec: 0.0,
            fault_free_wall_sec: wall,
        })
    }

    /// One epoch of *elastic* data-parallel training: like
    /// [`Runner::train_epoch_multi_device`], but the group survives the
    /// device-level faults of the armed
    /// [`betty_device::FaultPlan`] — scheduled device failures,
    /// per-device straggler slowdowns, and transient all-reduce link
    /// stalls.
    ///
    /// The epoch runs in three phases:
    ///
    /// 1. **Schedule** (pre-numeric): the fault plan's
    ///    `device_fail_steps` are replayed against the LPT schedule;
    ///    each lost device's unfinished micro-batches are LPT re-packed
    ///    onto survivors. If the migrated load no longer fits the
    ///    survivors' headroom budget (Eq. 5 estimate vs.
    ///    [`RetryPolicy`](crate::RetryPolicy) planning capacity), `K`
    ///    is escalated through the same recovery loop as OOM retries
    ///    until it fits or the budget runs out.
    /// 2. **Numerics**: every micro-batch executes once on the shared
    ///    model in plan order — identical to the fault-free path, which
    ///    is why losses and parameters are bit-identical with and
    ///    without injected device faults (proven by test).
    /// 3. **Attribution**: per-device timing is folded under straggler
    ///    slowdowns, stragglers are flagged against the group median,
    ///    and the ring all-reduce is simulated over the surviving ranks
    ///    with timeout/backoff retries; exhausted retries shed the
    ///    highest surviving rank and rebuild the ring.
    ///
    /// Every failover decision is appended to `log` and, when tracing,
    /// recorded as `failover`/`link_retry` spans and fault records.
    ///
    /// # Errors
    ///
    /// * [`RunError::DevicesExhausted`] if every device is lost with
    ///   unfinished work outstanding;
    /// * [`RunError::Plan`] if the migrated load cannot be made to fit
    ///   survivors within the retry budget;
    /// * [`RunError::Train`] if a micro-batch fails to execute.
    ///
    /// # Panics
    ///
    /// Panics if the armed fault plan fails
    /// [`betty_device::FaultPlan::validate_for_devices`] for this
    /// group's size (the CLI validates before construction).
    pub fn train_epoch_elastic(
        &mut self,
        dataset: &Dataset,
        strategy: StrategyKind,
        k: usize,
        group: &crate::multi::DeviceGroup,
        log: &mut RecoveryLog,
    ) -> Result<crate::multi::MultiDeviceEpoch, RunError> {
        self.begin_epoch(dataset);
        let fault = self.config.fault_plan.clone().unwrap_or_default();
        fault
            .validate_for_devices(group.num_devices)
            .unwrap_or_else(|e| panic!("invalid fault plan for elastic group: {e}"));
        let policy = self.config.retry.clone();
        let capacity = self.config.capacity_bytes;
        let batch = self.traced_sample_full_batch(dataset);
        let strategy_impl = build_strategy(strategy, self.seed);

        // Phase 1: schedule under scheduled device failures, escalating
        // K until the migrated load fits the survivors' headroom budget.
        let mut attempt = 0usize;
        let mut k_now = k;
        let (plan, schedule) = loop {
            let plan = self
                .planner
                .plan_with_capacity(
                    &batch,
                    strategy_impl.as_ref(),
                    k_now,
                    policy.planning_capacity(capacity, attempt),
                )
                .map_err(RunError::Plan)?;
            let work: Vec<f64> = plan
                .micro_batches
                .iter()
                .map(|mb| mb.total_edges() as f64)
                .collect();
            let schedule = crate::multi::simulate_elastic_schedule(
                &work,
                group.num_devices,
                &fault.device_fail_steps,
            )
            .map_err(|e| {
                log.record(RecoveryEvent::Exhausted { attempts: attempt });
                RunError::DevicesExhausted(e)
            })?;
            // Eq. 5 feasibility re-check on the survivors: every
            // migrated micro-batch must fit a survivor's budget with
            // one extra headroom step (migration never changes a
            // micro-batch's own peak, only who pays it).
            let survivor_capacity = policy.planning_capacity(capacity, attempt + 1);
            let worst_migrated = schedule
                .failovers
                .iter()
                .flat_map(|fo| fo.migrated.iter())
                .map(|&job| plan.estimates[job].peak_bytes())
                .max()
                .unwrap_or(0);
            if worst_migrated <= survivor_capacity {
                break (plan, schedule);
            }
            if attempt >= policy.max_retries {
                log.record(RecoveryEvent::Exhausted { attempts: attempt });
                return Err(RunError::Plan(PlanError::CapacityUnreachable {
                    max_partitions: self.config.max_partitions,
                    best_peak: worst_migrated,
                    capacity: survivor_capacity,
                }));
            }
            attempt += 1;
            k_now = policy
                .escalate_k(plan.micro_batches.len())
                .min(self.config.max_partitions);
        };
        self.record_plan_spans(&plan);

        // Phase 2: numerics — identical to the fault-free path.
        let (mut combined, steps) = self
            .trainer
            .micro_batch_epoch_with_steps(dataset, &plan.micro_batches)
            .map_err(RunError::Train)?;
        self.annotate_drift(&mut combined, &steps, &plan);
        combined.host_bytes = host_staging_bytes(dataset, &plan.micro_batches)
            + batch.total_edges() * 3 * betty_device::BYTES_PER_VALUE;
        combined.oom_retries = attempt;

        // Phase 3: timing attribution, straggler detection, and the
        // elastic all-reduce.
        let d = group.num_devices;
        let grad_bytes =
            self.trainer.model().total_param_count() * betty_device::BYTES_PER_VALUE;
        let per_device = crate::multi::fold_by_device_scaled(
            &steps,
            &schedule.assignment,
            d,
            &fault.straggler_factors,
        );
        let baseline = crate::multi::fold_by_device(&steps, &schedule.initial_assignment, d);
        let fault_free_wall_sec = baseline
            .iter()
            .map(EpochStats::total_sec)
            .fold(0.0, f64::max)
            + group.allreduce_sec(grad_bytes, d);
        let mut health = schedule.health.clone();
        let mut injected_faults = 0usize;

        for fo in &schedule.failovers {
            injected_faults += 1;
            log.record(RecoveryEvent::Fault(
                betty_device::FaultEvent::DeviceFail {
                    device: fo.device,
                    completed_steps: fo.completed_steps,
                },
            ));
            log.record(RecoveryEvent::DeviceLost {
                device: fo.device,
                completed_steps: fo.completed_steps,
                live_ranks: fo.live_ranks,
            });
            log.record(RecoveryEvent::WorkMigrated {
                from_device: fo.device,
                micro_batches: fo.migrated.len(),
                survivors: fo.live_ranks,
            });
            log.record(RecoveryEvent::RingRebuilt {
                live_ranks: fo.live_ranks,
                allreduce_sec: group.allreduce_sec(grad_bytes, fo.live_ranks),
            });
            if let Some(tr) = self.trainer.trace_mut() {
                let at = tr.now_sec();
                tr.record_span(SpanKind::Failover, Some(fo.device), at, 0.0);
                tr.record_fault(
                    "device_fail",
                    format!(
                        "device {} lost after {} steps; {} micro-batches migrated",
                        fo.device,
                        fo.completed_steps,
                        fo.migrated.len()
                    ),
                );
            }
        }

        // Straggler detection on the attributed (post-failover,
        // slowdown-scaled) timings.
        let mut work_per_device = vec![0.0f64; d];
        for (job, &device) in schedule.assignment.iter().enumerate() {
            work_per_device[device] += plan.micro_batches[job].total_edges() as f64;
        }
        let stragglers = crate::multi::detect_stragglers(
            &per_device,
            &work_per_device,
            group.straggler_threshold,
        );
        for &(device, slowdown) in &stragglers {
            if health[device] == crate::multi::DeviceHealth::Healthy {
                health[device] = crate::multi::DeviceHealth::Degraded;
            }
            log.record(RecoveryEvent::StragglerDetected { device, slowdown });
            if let Some(tr) = self.trainer.trace_mut() {
                tr.record_fault(
                    "straggler",
                    format!("device {device} at {slowdown:.2}x the median time per work"),
                );
            }
        }

        // Elastic all-reduce over the surviving ranks.
        let mut live: Vec<usize> = (0..d)
            .filter(|&dev| health[dev] != crate::multi::DeviceHealth::Failed)
            .collect();
        let sync = crate::multi::simulate_allreduce(
            group,
            grad_bytes,
            &mut live,
            self.link_faults.as_mut(),
        );
        for retry in &sync.retries {
            log.record(RecoveryEvent::LinkRetry {
                attempt: retry.attempt,
                stall_sec: retry.stall_sec,
                backoff_sec: retry.backoff_sec,
            });
            if let Some(tr) = self.trainer.trace_mut() {
                let at = tr.now_sec();
                tr.record_span(
                    SpanKind::LinkRetry,
                    Some(retry.attempt),
                    at,
                    group.allreduce_timeout_sec + retry.backoff_sec,
                );
            }
        }
        for (&lost, &(ranks, sec)) in sync.lost_ranks.iter().zip(&sync.rebuilt) {
            health[lost] = crate::multi::DeviceHealth::Failed;
            let completed = steps
                .iter()
                .zip(&schedule.assignment)
                .filter(|(_, &dev)| dev == lost)
                .count();
            log.record(RecoveryEvent::DeviceLost {
                device: lost,
                completed_steps: completed,
                live_ranks: ranks,
            });
            log.record(RecoveryEvent::RingRebuilt {
                live_ranks: ranks,
                allreduce_sec: sec,
            });
            if let Some(tr) = self.trainer.trace_mut() {
                let at = tr.now_sec();
                tr.record_span(SpanKind::Failover, Some(lost), at, 0.0);
                tr.record_fault(
                    "link_exhausted",
                    format!("rank {lost} shed after sync retries ran out; ring now {ranks}"),
                );
            }
        }
        if let Some(tr) = self.trainer.trace_mut() {
            let at = tr.now_sec();
            tr.record_span(SpanKind::Allreduce, None, at, sync.total_sec);
        }
        for event in self.trainer.drain_fault_events() {
            injected_faults += 1;
            log.record(RecoveryEvent::Fault(event));
        }
        if let Some(link) = self.link_faults.as_mut() {
            for event in betty_device::FaultEvents::drain_events(link) {
                injected_faults += 1;
                log.record(RecoveryEvent::Fault(event));
            }
        }

        combined.devices_lost = schedule.failovers.len() + sync.lost_ranks.len();
        combined.migrated_steps = schedule
            .failovers
            .iter()
            .map(|fo| fo.migrated.len())
            .sum();
        combined.link_retries = sync.retries.len();
        combined.stragglers_detected = stragglers.len();
        combined.injected_faults = injected_faults;
        let live_ranks = live.len();
        Ok(crate::multi::MultiDeviceEpoch {
            combined,
            per_device,
            assignment: schedule.assignment,
            allreduce_sec: sync.final_ring_sec,
            health,
            live_ranks,
            sync_overhead_sec: sync.total_sec - sync.final_ring_sec,
            fault_free_wall_sec,
        })
    }

    /// One epoch of classic mini-batch training over `num_batches` chunks
    /// of the training set (the §3.3/Table 6 baseline).
    ///
    /// # Errors
    ///
    /// [`TrainError::StepOom`] if a mini-batch exceeds capacity.
    pub fn train_epoch_mini(
        &mut self,
        dataset: &Dataset,
        num_batches: usize,
    ) -> Result<EpochStats, TrainError> {
        self.begin_epoch(dataset);
        // Split as evenly as possible into *exactly* num_batches chunks
        // (plain `chunks(ceil(n/k))` can come up short, e.g. 9 nodes into
        // 4 batches of 3 yields only 3 batches).
        let num_batches = num_batches.max(1).min(dataset.train_idx.len().max(1));
        let n = dataset.train_idx.len();
        let base = n / num_batches;
        let extra = n % num_batches;
        let mut chunks: Vec<Vec<NodeId>> = Vec::with_capacity(num_batches);
        let mut start = 0usize;
        for i in 0..num_batches {
            let len = base + usize::from(i < extra);
            chunks.push(dataset.train_idx[start..start + len].to_vec());
            start += len;
        }
        let batches: Vec<Batch> = chunks
            .iter()
            .map(|c| self.sample_batch_for(c))
            .collect();
        self.trainer.mini_batch_epoch(dataset, &batches)
    }

    /// Epochs this runner has trained (monotone across every
    /// `train_epoch_*` entry point).
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Captures everything a durable checkpoint needs to resume this
    /// session bit-identically: parameters, Adam moments, both RNG
    /// streams (dropout and neighbor sampling), the epoch/step counters,
    /// and the config fingerprint. Slot meanings are the
    /// [`crate::durable`] constants; fit-level state (loss history,
    /// early-stopping counters) is appended by the caller.
    pub fn export_session(&self) -> TrainState {
        let mut state = TrainState::from_model(self.trainer.model());
        state.adam = Some(self.trainer.export_optimizer_state());
        state.rngs = vec![self.trainer.rng_state(), self.sample_rng.state()];
        state.counters = vec![
            self.epochs_run as u64,
            self.trainer.global_step() as u64,
            self.seed,
        ];
        state.fingerprint = Some(self.dataset_fingerprint);
        state
    }

    /// Restores a session captured by [`Runner::export_session`] onto a
    /// freshly built runner with the *same* config. Fingerprint, slot
    /// and shape checks run before parameters are touched; each piece of
    /// state is itself validated before it mutates anything.
    ///
    /// # Errors
    ///
    /// [`RunError::Checkpoint`] if the checkpoint's config fingerprint
    /// differs from this runner's, or any section's shape does not match
    /// the model.
    pub fn import_session(&mut self, state: &TrainState) -> Result<(), RunError> {
        if let Some(fp) = state.fingerprint {
            let own = self.dataset_fingerprint;
            if fp != own {
                return Err(RunError::Checkpoint(format!(
                    "config/dataset fingerprint mismatch: checkpoint {fp:#018x} vs current \
                     {own:#018x} (the checkpoint was produced by a different experiment or \
                     against a different dataset)"
                )));
            }
        }
        if state.rngs.len() < crate::durable::RUNNER_RNGS {
            return Err(RunError::Checkpoint(format!(
                "checkpoint carries {} RNG states, need {}",
                state.rngs.len(),
                crate::durable::RUNNER_RNGS
            )));
        }
        if state.counters.len() < crate::durable::RUNNER_COUNTERS {
            return Err(RunError::Checkpoint(format!(
                "checkpoint carries {} counters, need {}",
                state.counters.len(),
                crate::durable::RUNNER_COUNTERS
            )));
        }
        let adam = state.adam.as_ref().ok_or_else(|| {
            RunError::Checkpoint("checkpoint has no optimizer state".into())
        })?;
        state
            .apply_params(self.trainer.model_mut())
            .map_err(|e| RunError::Checkpoint(e.to_string()))?;
        self.trainer
            .import_optimizer_state(adam)
            .map_err(RunError::Checkpoint)?;
        self.trainer
            .set_rng_state(state.rngs[crate::durable::RNG_TRAINER]);
        self.sample_rng = Pcg64Mcg::new(state.rngs[crate::durable::RNG_SAMPLER]);
        self.epochs_run = state.counters[crate::durable::CTR_EPOCHS_RUN] as usize;
        self.trainer
            .set_global_step(state.counters[crate::durable::CTR_GLOBAL_STEP] as usize);
        self.seed = state.counters[crate::durable::CTR_SEED];
        // A cached output grouping belongs to the pre-import session —
        // and so does every staged pipeline bundle: its batches were
        // drawn from the pre-import RNG cursor, which the line above
        // just replaced. The pipeline restarts from the imported cursor
        // on the next pipelined epoch.
        self.cached_parts = None;
        self.pipeline = None;
        Ok(())
    }

    /// Accuracy on `nodes` using the configured fanouts for inference.
    pub fn evaluate(&mut self, dataset: &Dataset, nodes: &[NodeId]) -> f64 {
        // Evaluation sampling draws from the same RNG stream the
        // pipeline staged future batches ahead of; keeping those bundles
        // would diverge from a synchronous run, so they are discarded
        // and the pipeline restarts from the post-evaluation cursor.
        self.pipeline = None;
        let fanouts = self.config.fanouts.clone();
        eval::accuracy(
            self.trainer.model(),
            dataset,
            nodes,
            &fanouts,
            &mut self.sample_rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_data::DatasetSpec;
    use betty_device::gib;
    use betty_nn::AggregatorSpec;

    fn dataset() -> Dataset {
        DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(12)
            .generate(4)
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig {
            fanouts: vec![4, 8],
            hidden_dim: 16,
            aggregator: AggregatorSpec::Mean,
            capacity_bytes: gib(4),
            dropout: 0.0,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn betty_epoch_runs_and_learns() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let mut first = None;
        let mut last = None;
        for _ in 0..8 {
            let stats = runner
                .train_epoch_betty(&ds, StrategyKind::Betty, 2)
                .unwrap();
            first.get_or_insert(stats.loss);
            last = Some(stats.loss);
        }
        assert!(last.unwrap() < first.unwrap());
    }

    #[test]
    fn auto_planning_picks_k_one_when_everything_fits() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let (_, k) = runner.train_epoch_auto(&ds, StrategyKind::Betty).unwrap();
        assert_eq!(k, 1, "4 GiB fits the tiny batch whole");
    }

    #[test]
    fn auto_planning_splits_under_pressure() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let batch = runner.sample_full_batch(&ds);
        let full_peak = runner
            .plan_fixed(&batch, StrategyKind::Betty, 1)
            .max_estimated_peak();
        let tight = ExperimentConfig {
            capacity_bytes: full_peak - 1,
            ..config()
        };
        let mut tight_runner = Runner::new(&ds, &tight, 0);
        let (stats, k) = tight_runner
            .train_epoch_auto(&ds, StrategyKind::Betty)
            .unwrap();
        assert!(k > 1);
        assert!(stats.max_peak_bytes <= full_peak);
    }

    #[test]
    fn gat_runner_trains() {
        let ds = dataset();
        let cfg = ExperimentConfig {
            model: ModelKind::Gat,
            hidden_dim: 16,
            num_heads: 4,
            ..config()
        };
        let mut runner = Runner::new(&ds, &cfg, 0);
        let stats = runner
            .train_epoch_betty(&ds, StrategyKind::Betty, 2)
            .unwrap();
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn estimator_drift_is_exact_at_every_precision() {
        // Eq. 5 exactness is the planner's contract: the measured step
        // peak must equal the estimate bit-for-bit (drift ratio 1.0), and
        // the half-width byte terms must keep it that way.
        use betty_tensor::DType;
        let ds = dataset();
        for precision in [DType::F32, DType::Bf16, DType::F16] {
            let cfg = ExperimentConfig {
                precision,
                ..config()
            };
            let mut runner = Runner::new(&ds, &cfg, 0);
            let stats = runner
                .train_epoch_betty(&ds, StrategyKind::Betty, 3)
                .unwrap();
            assert!(stats.loss.is_finite());
            assert_eq!(
                stats.estimator_drift, 1.0,
                "estimate must match the measured peak exactly under {precision:?}"
            );
        }
    }

    #[test]
    fn half_precision_training_loss_stays_close_to_f32() {
        // 16-bit storage perturbs activations by ≤ half a ulp per value;
        // over a short run the loss must stay finite and track the f32
        // trajectory within a loose relative tolerance (not bit-exact:
        // that would defeat the point of the quantization).
        use betty_tensor::DType;
        let ds = dataset();
        let loss_at = |precision: DType| {
            let cfg = ExperimentConfig {
                precision,
                ..config()
            };
            let mut runner = Runner::new(&ds, &cfg, 0);
            let mut last = f64::NAN;
            for _ in 0..3 {
                last = runner
                    .train_epoch_betty(&ds, StrategyKind::Betty, 2)
                    .unwrap()
                    .loss;
            }
            last
        };
        let f32_loss = loss_at(DType::F32);
        for precision in [DType::Bf16, DType::F16] {
            let half_loss = loss_at(precision);
            assert!(half_loss.is_finite(), "{precision:?} loss diverged");
            let rel = (half_loss - f32_loss).abs() / f32_loss.abs().max(1e-6);
            assert!(
                rel < 0.05,
                "{precision:?} loss {half_loss} strayed {rel:.3} from f32 loss {f32_loss}"
            );
        }
    }

    #[test]
    fn half_precision_needs_fewer_partitions_on_fixed_budget() {
        // The planner-visible payoff of 16-bit storage: on a power-law
        // graph with a budget that forces the f32 run to split, the bf16
        // run's smaller per-micro-batch footprint admits a strictly
        // smaller K.
        use betty_tensor::DType;
        let ds = DatasetSpec::reddit()
            .scaled(0.002)
            .with_feature_dim(32)
            .generate(11);
        let f32_cfg = ExperimentConfig {
            fanouts: vec![4, 8],
            hidden_dim: 32,
            dropout: 0.0,
            capacity_bytes: gib(4),
            ..ExperimentConfig::default()
        };
        // Budget: below the full-batch f32 peak so K must grow.
        let mut probe = Runner::new(&ds, &f32_cfg, 0);
        let batch = probe.sample_full_batch(&ds);
        let full_peak = probe
            .plan_fixed(&batch, StrategyKind::Betty, 1)
            .max_estimated_peak();
        let budget = full_peak * 3 / 4;
        let tight_f32 = ExperimentConfig {
            capacity_bytes: budget,
            ..f32_cfg.clone()
        };
        let tight_bf16 = ExperimentConfig {
            capacity_bytes: budget,
            precision: DType::Bf16,
            ..f32_cfg
        };
        let (_, k_f32) = Runner::new(&ds, &tight_f32, 0)
            .train_epoch_auto(&ds, StrategyKind::Betty)
            .unwrap();
        let (_, k_bf16) = Runner::new(&ds, &tight_bf16, 0)
            .train_epoch_auto(&ds, StrategyKind::Betty)
            .unwrap();
        assert!(k_f32 > 1, "budget must force the f32 run to split");
        assert!(
            k_bf16 < k_f32,
            "bf16 must need strictly fewer partitions: f32 K={k_f32}, bf16 K={k_bf16}"
        );
    }

    #[test]
    fn evaluate_returns_probability() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let nodes: Vec<_> = ds.val_idx.iter().copied().take(20).collect();
        let acc = runner.evaluate(&ds, &nodes);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn mini_batch_epoch_runs() {
        let ds = dataset();
        let mut runner = Runner::new(&ds, &config(), 0);
        let stats = runner.train_epoch_mini(&ds, 4).unwrap();
        assert_eq!(stats.num_steps, 4);
    }

    #[test]
    fn recovering_epoch_escalates_past_an_injected_oom() {
        use crate::recovery::RecoveryLog;
        use betty_device::FaultPlan;
        let ds = dataset();
        let cfg = ExperimentConfig {
            fault_plan: Some(FaultPlan {
                oom_steps: vec![0],
                ..FaultPlan::default()
            }),
            ..config()
        };
        let mut runner = Runner::new(&ds, &cfg, 0);
        let mut log = RecoveryLog::new();
        let (stats, k) = runner
            .train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log)
            .expect("recovery must rescue the injected OOM");
        assert_eq!(stats.oom_retries, 1);
        assert_eq!(stats.injected_faults, 1);
        assert!(k >= 2, "escalation grows K, got {k}");
        assert_eq!(log.oom_retries(), 1);
        assert_eq!(log.injected_faults(), 1);
        assert_eq!(log.recoveries(), 1);
        assert!(!log.exhausted());
    }

    #[test]
    fn retry_exhaustion_surfaces_the_original_error_chain() {
        use crate::recovery::{RecoveryLog, RetryPolicy};
        use betty_device::{FaultPlan, OomError};
        let ds = dataset();
        let cfg = ExperimentConfig {
            fault_plan: Some(FaultPlan {
                alloc_failure_rate: 1.0, // every allocation fails
                ..FaultPlan::default()
            }),
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            ..config()
        };
        let mut runner = Runner::new(&ds, &cfg, 0);
        let mut log = RecoveryLog::new();
        let err = runner
            .train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log)
            .unwrap_err();
        let RunError::RetryExhausted { attempts, .. } = &err else {
            panic!("expected RetryExhausted, got {err:?}");
        };
        assert_eq!(*attempts, 2);
        assert!(log.exhausted());
        // Walk the source() chain down to the original OomError.
        let mut cause: &dyn std::error::Error = &err;
        while let Some(next) = cause.source() {
            cause = next;
        }
        let oom = cause
            .downcast_ref::<OomError>()
            .expect("chain must bottom out in the device OomError");
        assert!(oom.injected);
    }

    #[test]
    fn zero_retry_budget_reports_plain_train_error() {
        use crate::recovery::{RecoveryLog, RetryPolicy};
        use betty_device::FaultPlan;
        let ds = dataset();
        let cfg = ExperimentConfig {
            fault_plan: Some(FaultPlan {
                oom_steps: vec![0],
                ..FaultPlan::default()
            }),
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            ..config()
        };
        let mut runner = Runner::new(&ds, &cfg, 0);
        let mut log = RecoveryLog::new();
        let err = runner
            .train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log)
            .unwrap_err();
        assert!(
            matches!(err, RunError::Train(_)),
            "no retries attempted → plain Train error, got {err:?}"
        );
        assert_eq!(log.oom_retries(), 0);
    }

    #[test]
    fn prefetch_toggle_does_not_change_losses() {
        let ds = dataset();
        let on_cfg = config();
        assert!(on_cfg.prefetch, "prefetch is the default");
        let off_cfg = ExperimentConfig {
            prefetch: false,
            ..config()
        };
        let mut on = Runner::new(&ds, &on_cfg, 0);
        let mut off = Runner::new(&ds, &off_cfg, 0);
        for epoch in 0..3 {
            let a = on.train_epoch_betty(&ds, StrategyKind::Betty, 3).unwrap();
            let b = off.train_epoch_betty(&ds, StrategyKind::Betty, 3).unwrap();
            assert_eq!(
                a.loss.to_bits(),
                b.loss.to_bits(),
                "epoch {epoch}: prefetch must only change timing"
            );
            assert_eq!(b.prefetch_overlap_sec, 0.0);
            assert!(a.transfer_sec <= b.transfer_sec + 1e-12);
        }
    }

    #[test]
    fn fault_mid_prefetched_epoch_leaves_ledger_drained() {
        use betty_device::FaultPlan;
        let ds = dataset();
        let cfg = ExperimentConfig {
            // Step 0 stages step 1's transfer; the fault then kills step 1,
            // which must drop the staged charge along with everything else.
            fault_plan: Some(FaultPlan {
                oom_steps: vec![1],
                ..FaultPlan::default()
            }),
            ..config()
        };
        assert!(cfg.prefetch);
        let mut runner = Runner::new(&ds, &cfg, 0);
        let err = runner
            .train_epoch_betty(&ds, StrategyKind::Betty, 3)
            .unwrap_err();
        assert!(err.is_injected());
        assert_eq!(
            runner.trainer().device().current_bytes(),
            0,
            "failure in a prefetched epoch must leave no staged charge behind"
        );
        // The next epoch trains through cleanly on the drained device.
        runner.train_epoch_betty(&ds, StrategyKind::Betty, 3).unwrap();
    }

    #[test]
    fn recovering_epoch_with_prefetch_still_escalates_and_recovers() {
        use crate::recovery::RecoveryLog;
        use betty_device::FaultPlan;
        let ds = dataset();
        let cfg = ExperimentConfig {
            fault_plan: Some(FaultPlan {
                oom_steps: vec![0],
                ..FaultPlan::default()
            }),
            ..config()
        };
        assert!(cfg.prefetch);
        let mut runner = Runner::new(&ds, &cfg, 0);
        let mut log = RecoveryLog::new();
        let (stats, _k) = runner
            .train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log)
            .expect("recovery must work with prefetch enabled");
        assert_eq!(stats.oom_retries, 1);
        assert_eq!(runner.trainer().device().current_bytes(), 0);
    }

    #[test]
    fn noop_fault_plan_is_byte_identical_to_no_plan() {
        use crate::recovery::RecoveryLog;
        use betty_device::FaultPlan;
        let ds = dataset();
        let clean_cfg = config();
        let armed_cfg = ExperimentConfig {
            // Non-zero seed, all rates zero: armed but inert.
            fault_plan: Some(FaultPlan {
                seed: 1234,
                ..FaultPlan::default()
            }),
            ..config()
        };
        let mut clean = Runner::new(&ds, &clean_cfg, 0);
        let mut armed = Runner::new(&ds, &armed_cfg, 0);
        let mut log = RecoveryLog::new();
        let (a, ka) = clean
            .train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log)
            .unwrap();
        let (b, kb) = armed
            .train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log)
            .unwrap();
        assert_eq!(ka, kb);
        assert_eq!(a.max_peak_bytes, b.max_peak_bytes);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits());
        assert!(log.is_empty());
    }
}

//! Durable, crash-safe training sessions: periodic on-disk checkpoints
//! and resume.
//!
//! A [`CheckpointPlan`] names a directory and a cadence; [`fit`](crate::fit())
//! (and the CLI's epoch loop) save a full [`TrainState`] — parameters,
//! Adam moments, both RNG streams, step/epoch counters, the loss history,
//! and the config fingerprint — at the end of every `every`-th epoch.
//! Writes go through [`betty_nn::write_atomic`] (tmp + fsync + rename),
//! so a checkpoint either exists completely with valid CRCs or not at
//! all; a SIGKILL mid-write leaves the previous checkpoint intact.
//!
//! Resume ([`latest_checkpoint`] + [`Runner::import_session`]) restores
//! every piece of state training consumes, so a killed-and-resumed run
//! produces losses and parameters bit-identical to one that was never
//! interrupted.
//!
//! # Slot layout
//!
//! [`TrainState`] stores RNGs, counters and floats positionally; the
//! constants below assign the slots their meaning. [`Runner`] owns slots
//! `0..RUNNER_COUNTERS`; the fit loop appends its own after them.

use std::path::{Path, PathBuf};

use betty_nn::TrainState;

use crate::runner::RunError;

/// [`TrainState::rngs`] slot of the trainer's dropout RNG.
pub const RNG_TRAINER: usize = 0;
/// [`TrainState::rngs`] slot of the runner's neighbor-sampling RNG.
pub const RNG_SAMPLER: usize = 1;
/// Number of RNG slots a [`Runner`](crate::Runner) session carries.
pub const RUNNER_RNGS: usize = 2;

/// [`TrainState::counters`] slot of the runner's epochs-run counter.
pub const CTR_EPOCHS_RUN: usize = 0;
/// [`TrainState::counters`] slot of the trainer's global step counter.
pub const CTR_GLOBAL_STEP: usize = 1;
/// [`TrainState::counters`] slot of the runner's base seed (it feeds the
/// partitioning strategy every epoch, so a resumed session must keep it
/// even when the resuming process was built with a different seed).
pub const CTR_SEED: usize = 2;
/// Number of counter slots owned by [`Runner`](crate::Runner); fit-level
/// counters follow.
pub const RUNNER_COUNTERS: usize = 3;
/// [`TrainState::counters`] slot of the next epoch index to train.
pub const CTR_NEXT_EPOCH: usize = 3;
/// [`TrainState::counters`] slot of the best-validation epoch index.
pub const CTR_BEST_EPOCH: usize = 4;
/// [`TrainState::counters`] slot of the epochs-since-best counter.
pub const CTR_SINCE_BEST: usize = 5;

/// [`TrainState::floats`] slot of the best validation accuracy.
pub const FLT_BEST_VAL: usize = 0;

/// Where and how often to write durable checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPlan {
    /// Directory checkpoints are written into (created if missing).
    pub dir: PathBuf,
    /// Save after every `every`-th epoch (1 = every epoch). The final
    /// epoch is always saved regardless of cadence.
    pub every: usize,
}

impl CheckpointPlan {
    /// A plan saving into `dir` after every `every`-th epoch.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            dir: dir.into(),
            every,
        }
    }

    /// Checks the cadence is usable.
    ///
    /// # Errors
    ///
    /// Returns a message if `every` is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.every == 0 {
            return Err("checkpoint cadence must be ≥ 1".into());
        }
        Ok(())
    }

    /// Whether a checkpoint is due after `epoch` (0-based) completed,
    /// given `max_epochs` total.
    pub fn due_after(&self, epoch: usize, max_epochs: usize) -> bool {
        (epoch + 1).is_multiple_of(self.every.max(1)) || epoch + 1 == max_epochs
    }

    /// Checkpoint file path for the state *after* `epoch` completed.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{:06}.btc", epoch))
    }

    /// Creates the checkpoint directory (and parents) if missing.
    ///
    /// # Errors
    ///
    /// [`RunError::Checkpoint`] if the directory cannot be created.
    pub fn ensure_dir(&self) -> Result<(), RunError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| {
            RunError::Checkpoint(format!(
                "cannot create checkpoint dir {}: {e}",
                self.dir.display()
            ))
        })
    }

    /// Saves `state` as the checkpoint for `epoch`, atomically.
    ///
    /// # Errors
    ///
    /// [`RunError::Checkpoint`] on any I/O failure.
    pub fn save(&self, state: &TrainState, epoch: usize) -> Result<PathBuf, RunError> {
        self.ensure_dir()?;
        let path = self.path_for(epoch);
        betty_nn::save_train_state(state, &path).map_err(|e| {
            RunError::Checkpoint(format!("cannot write {}: {e}", path.display()))
        })?;
        Ok(path)
    }
}

/// Epoch index encoded in a checkpoint filename, if it has the
/// `ckpt-NNNNNN.btc` shape.
fn epoch_of(path: &Path) -> Option<usize> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_prefix("ckpt-")?.strip_suffix(".btc")?;
    stem.parse().ok()
}

/// Finds the newest checkpoint (highest epoch) in `dir`.
///
/// Returns `Ok(None)` when the directory is missing or holds no
/// `ckpt-NNNNNN.btc` files.
///
/// # Errors
///
/// [`RunError::Checkpoint`] if the directory exists but cannot be read.
pub fn latest_checkpoint(dir: impl AsRef<Path>) -> Result<Option<(usize, PathBuf)>, RunError> {
    let dir = dir.as_ref();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(RunError::Checkpoint(format!(
                "cannot read checkpoint dir {}: {e}",
                dir.display()
            )))
        }
    };
    let mut best: Option<(usize, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| {
            RunError::Checkpoint(format!("cannot read checkpoint dir {}: {e}", dir.display()))
        })?;
        let path = entry.path();
        if let Some(epoch) = epoch_of(&path) {
            if best.as_ref().is_none_or(|(b, _)| epoch > *b) {
                best = Some((epoch, path));
            }
        }
    }
    Ok(best)
}

/// The newest *loadable* checkpoint in a directory, plus every newer
/// slot that had to be skipped because it failed CRC/format validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointResolution {
    /// Epoch index of the slot that loaded cleanly.
    pub epoch: usize,
    /// Path of the slot that loaded cleanly.
    pub path: PathBuf,
    /// The loaded state, ready for [`Runner::import_session`](crate::Runner::import_session).
    pub state: TrainState,
    /// Newer slots skipped because they were unreadable or corrupt,
    /// newest first. Empty when the newest slot was healthy.
    pub skipped: Vec<PathBuf>,
}

/// Finds the newest checkpoint that actually *loads*: walks the slots
/// newest-first, skipping any that are unreadable or fail CRC/format
/// validation, and returns the first healthy one together with the
/// skipped paths (so callers can log a `CheckpointFallback`).
///
/// Returns `Ok(None)` when the directory is missing or holds no
/// `ckpt-NNNNNN.btc` files at all.
///
/// # Errors
///
/// [`RunError::Checkpoint`] if the directory cannot be read, or if slots
/// exist but *every* one of them is corrupt (the error lists each slot
/// and why it was rejected).
pub fn latest_valid_checkpoint(
    dir: impl AsRef<Path>,
) -> Result<Option<CheckpointResolution>, RunError> {
    let dir = dir.as_ref();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(RunError::Checkpoint(format!(
                "cannot read checkpoint dir {}: {e}",
                dir.display()
            )))
        }
    };
    let mut slots: Vec<(usize, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| {
            RunError::Checkpoint(format!("cannot read checkpoint dir {}: {e}", dir.display()))
        })?;
        let path = entry.path();
        if let Some(epoch) = epoch_of(&path) {
            slots.push((epoch, path));
        }
    }
    if slots.is_empty() {
        return Ok(None);
    }
    slots.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
    let mut skipped = Vec::new();
    let mut reasons = Vec::new();
    for (epoch, path) in slots {
        match load_checkpoint_state(&path) {
            Ok(state) => {
                return Ok(Some(CheckpointResolution {
                    epoch,
                    path,
                    state,
                    skipped,
                }))
            }
            Err(err) => {
                reasons.push(format!("{}: {err}", path.display()));
                skipped.push(path);
            }
        }
    }
    Err(RunError::Checkpoint(format!(
        "no loadable checkpoint in {}: every slot is corrupt ({})",
        dir.display(),
        reasons.join("; ")
    )))
}

/// Loads a checkpoint file, mapping format/I-O failures onto
/// [`RunError::Checkpoint`].
///
/// # Errors
///
/// [`RunError::Checkpoint`] if the file is missing, unreadable, or fails
/// its CRC/format validation.
pub fn load_checkpoint_state(path: impl AsRef<Path>) -> Result<TrainState, RunError> {
    let path = path.as_ref();
    betty_nn::load_train_state(path)
        .map_err(|e| RunError::Checkpoint(format!("cannot load {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_paths_and_cadence() {
        let plan = CheckpointPlan::new("/tmp/ck", 3);
        plan.validate().unwrap();
        assert!(CheckpointPlan::new("/tmp/ck", 0).validate().is_err());
        assert_eq!(plan.path_for(7).file_name().unwrap(), "ckpt-000007.btc");
        assert!(!plan.due_after(0, 10));
        assert!(plan.due_after(2, 10), "epochs 3, 6, 9, ... are due");
        assert!(plan.due_after(9, 10), "final epoch is always due");
    }

    #[test]
    fn latest_checkpoint_picks_highest_epoch() {
        let dir = std::env::temp_dir().join(format!("betty-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(latest_checkpoint(&dir).unwrap(), None, "missing dir is not an error");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(latest_checkpoint(&dir).unwrap(), None);
        for epoch in [2usize, 11, 5] {
            let state = TrainState {
                params: vec![betty_tensor::Tensor::ones(&[2, 2])],
                counters: vec![epoch as u64],
                ..TrainState::default()
            };
            CheckpointPlan::new(&dir, 1).save(&state, epoch).unwrap();
        }
        std::fs::write(dir.join("not-a-checkpoint.txt"), b"x").unwrap();
        let (epoch, path) = latest_checkpoint(&dir).unwrap().expect("checkpoints exist");
        assert_eq!(epoch, 11);
        let state = load_checkpoint_state(&path).unwrap();
        assert_eq!(state.counters, vec![11]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn save_slot(dir: &Path, epoch: usize) -> PathBuf {
        let state = TrainState {
            params: vec![betty_tensor::Tensor::ones(&[2, 2])],
            counters: vec![epoch as u64],
            ..TrainState::default()
        };
        CheckpointPlan::new(dir, 1).save(&state, epoch).unwrap()
    }

    fn corrupt_file(path: &Path) {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn latest_valid_checkpoint_falls_back_past_corrupt_slots() {
        let dir =
            std::env::temp_dir().join(format!("betty-durable-fb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(latest_valid_checkpoint(&dir).unwrap(), None);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(latest_valid_checkpoint(&dir).unwrap(), None);

        for epoch in [3usize, 7, 9] {
            save_slot(&dir, epoch);
        }
        let healthy = latest_valid_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(healthy.epoch, 9);
        assert!(healthy.skipped.is_empty());

        // Corrupt the newest slot: resolution falls back to epoch 7 and
        // names the skipped path.
        let newest = CheckpointPlan::new(&dir, 1).path_for(9);
        corrupt_file(&newest);
        let fell_back = latest_valid_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(fell_back.epoch, 7);
        assert_eq!(fell_back.state.counters, vec![7]);
        assert_eq!(fell_back.skipped, vec![newest.clone()]);

        // `latest_checkpoint` (the raw filename scan) still names the
        // corrupt slot — the fallback is a loader-level concern.
        assert_eq!(latest_checkpoint(&dir).unwrap().unwrap().0, 9);

        // All slots corrupt → a Checkpoint error listing each slot.
        corrupt_file(&CheckpointPlan::new(&dir, 1).path_for(7));
        corrupt_file(&CheckpointPlan::new(&dir, 1).path_for(3));
        let err = latest_valid_checkpoint(&dir).unwrap_err();
        match err {
            RunError::Checkpoint(msg) => {
                assert!(msg.contains("every slot is corrupt"), "{msg}");
                assert!(msg.contains("ckpt-000009.btc"), "{msg}");
                assert!(msg.contains("ckpt-000003.btc"), "{msg}");
            }
            other => panic!("expected Checkpoint, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_failure_is_a_checkpoint_error() {
        let err = load_checkpoint_state("/nonexistent/nope.btc").unwrap_err();
        assert!(matches!(err, RunError::Checkpoint(_)), "{err:?}");
    }
}

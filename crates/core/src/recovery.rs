//! OOM recovery: retry policy, escalation arithmetic, and the log.
//!
//! The paper's memory-aware planner (§4.4.3) picks `K` from an *estimate*
//! of each micro-batch's peak memory. Estimates can be wrong, and real
//! allocators fail for reasons no estimator models (fragmentation,
//! transient driver errors — the faults [`betty_device::FaultPlan`]
//! injects). This module hardens the training loop against both: a
//! mid-step OOM rolls the trainable state back to an epoch-start
//! checkpoint and re-plans with an escalated partition count and a
//! shrunken planning capacity, governed by [`RetryPolicy`]. Every
//! injected fault and every recovery action is recorded in a
//! [`RecoveryLog`] so runs remain auditable and reproducible.

use std::fmt;

use betty_device::{AllocFaultKind, FaultEvent};

use crate::trainer::{AnomalyKind, StepPhase};

/// Governs how a failed epoch is retried and how the plan escalates
/// between attempts.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum recovery attempts per epoch before giving up. `0`
    /// disables recovery entirely (the first OOM is fatal).
    pub max_retries: usize,
    /// Partition-count escalation factor: after a failure at `K` the
    /// next attempt plans from `max(K + 1, ceil(K · growth))`.
    pub growth: f64,
    /// Fraction of capacity withheld from the planner per retry,
    /// compounding: attempt `i` plans against
    /// `capacity · (1 - headroom)^i`. Headroom absorbs estimator error —
    /// if the estimate said the failed plan fit, planning against the
    /// full capacity again could reproduce the same failure.
    pub headroom: f64,
    /// Maximum numeric-anomaly rollbacks per epoch before the run
    /// aborts. Unlike OOMs, a non-finite loss or gradient usually
    /// reproduces deterministically, so the budget defaults low: roll
    /// back once (the anomaly may have been injected or transient), then
    /// abort rather than loop on poisoned arithmetic.
    pub max_anomaly_retries: usize,
    /// Maximum retries per *shard read* when the out-of-core feature
    /// store hits a transient I/O error. Each retry backs off with
    /// seeded jitter (modelled, never slept); exhausting the budget
    /// surfaces a structured [`TrainError::Storage`](crate::TrainError)
    /// instead of looping forever on a dead disk.
    pub max_io_retries: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            growth: 2.0,
            headroom: 0.1,
            max_anomaly_retries: 1,
            max_io_retries: betty_data::DEFAULT_MAX_IO_RETRIES,
        }
    }
}

impl RetryPolicy {
    /// Checks the escalation knobs are in range.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.growth.is_finite() || self.growth < 1.0 {
            return Err(format!("retry growth must be ≥ 1, got {}", self.growth));
        }
        if !(0.0..1.0).contains(&self.headroom) {
            return Err(format!(
                "retry headroom must be in [0, 1), got {}",
                self.headroom
            ));
        }
        Ok(())
    }

    /// Next partition count after a failure at `k`. Always strictly
    /// increases so a retry never replays the identical plan.
    pub fn escalate_k(&self, k: usize) -> usize {
        ((k as f64 * self.growth).ceil() as usize).max(k + 1)
    }

    /// Planning capacity for `attempt` (0 = first try) given the real
    /// device capacity.
    pub fn planning_capacity(&self, capacity_bytes: usize, attempt: usize) -> usize {
        let scale = (1.0 - self.headroom).powi(attempt as i32);
        ((capacity_bytes as f64 * scale) as usize).max(1)
    }
}

/// One recorded fault or recovery action.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// An injected fault observed by the device or transfer link.
    Fault(FaultEvent),
    /// A mid-step OOM triggered a checkpointed retry with an escalated
    /// plan.
    OomRetry {
        /// 1-based recovery attempt number within the epoch.
        attempt: usize,
        /// Global step index that failed.
        step: usize,
        /// Phase of the step in which the OOM fired.
        phase: StepPhase,
        /// Whether the OOM was injected by a fault plan.
        injected: bool,
        /// Partition count of the failed plan.
        failed_k: usize,
        /// Partition count the next attempt starts from.
        next_k: usize,
        /// Capacity the next attempt plans against (after headroom
        /// backoff).
        planning_capacity: usize,
    },
    /// A non-finite loss or gradient was caught by the sentinel and the
    /// trainable state was rolled back to the epoch-start snapshot.
    AnomalyRollback {
        /// 1-based rollback attempt number within the epoch.
        attempt: usize,
        /// Global step index at which the anomaly was detected.
        step: usize,
        /// What went non-finite.
        kind: AnomalyKind,
        /// Whether the anomaly came from an injected fault plan.
        injected: bool,
    },
    /// The anomaly-rollback budget ran out; the run aborts rather than
    /// loop on deterministically poisoned arithmetic.
    AnomalyAbort {
        /// Rollbacks that were consumed before giving up.
        rollbacks: usize,
        /// Global step index of the final, fatal anomaly.
        step: usize,
        /// What went non-finite.
        kind: AnomalyKind,
    },
    /// A previously failed epoch completed after retrying.
    Recovered {
        /// Recovery attempts that were consumed.
        attempts: usize,
        /// Partition count of the successful plan.
        final_k: usize,
    },
    /// The retry budget ran out; the epoch failed for good.
    Exhausted {
        /// Recovery attempts that were consumed.
        attempts: usize,
    },
    /// A device of the simulated group was declared lost — mid-epoch
    /// (scheduled failure) or at the all-reduce (link retries
    /// exhausted).
    DeviceLost {
        /// Which device was lost.
        device: usize,
        /// Micro-batches the device completed before it was lost.
        completed_steps: usize,
        /// Surviving ranks after the loss.
        live_ranks: usize,
    },
    /// A lost device's unfinished micro-batches were re-packed onto
    /// survivors with the same LPT heuristic.
    WorkMigrated {
        /// Device the work came from.
        from_device: usize,
        /// Micro-batches that moved.
        micro_batches: usize,
        /// Surviving devices that absorbed them.
        survivors: usize,
    },
    /// The ring all-reduce was rebuilt over the surviving ranks.
    RingRebuilt {
        /// Ranks in the new ring.
        live_ranks: usize,
        /// Modelled synchronization seconds over the new ring.
        allreduce_sec: f64,
    },
    /// A device's attributed time per unit of work exceeded the group's
    /// straggler threshold over the median device.
    StragglerDetected {
        /// The slow device.
        device: usize,
        /// Its slowdown relative to the group median.
        slowdown: f64,
    },
    /// An all-reduce round timed out and was retried after a
    /// seeded-jitter exponential backoff.
    LinkRetry {
        /// 1-based retry attempt within this sync.
        attempt: usize,
        /// Injected stall seconds that tripped the timeout.
        stall_sec: f64,
        /// Backoff waited before the retry, in seconds.
        backoff_sec: f64,
    },
    /// A transient shard-read failure was absorbed by the retry/backoff
    /// page-in path.
    IoRetry {
        /// Index of the shard whose read failed.
        shard: usize,
        /// 1-based retry attempt for this read.
        attempt: usize,
        /// Modelled backoff before the retry, in seconds (never slept).
        backoff_sec: f64,
    },
    /// A shard failed its payload CRC mid-run and was reconstructed
    /// bit-identically from its XOR parity group, then re-persisted.
    ShardRepaired {
        /// Index of the repaired data shard.
        shard: usize,
        /// Parity group the reconstruction read.
        group: usize,
    },
    /// The newest checkpoint slot failed CRC/format validation on resume
    /// and the session restored from the next-older valid slot instead.
    CheckpointFallback {
        /// Corrupt/unreadable slots that were skipped, newest first.
        skipped: Vec<std::path::PathBuf>,
        /// The slot that loaded cleanly.
        used: std::path::PathBuf,
    },
    /// The partition-ahead pipeline was torn down because a rollback made
    /// its staged plans stale: they were computed at the pre-escalation
    /// `K` (and from a sampling-RNG cursor the retry no longer follows).
    /// The retry replans synchronously; the pipeline restarts from the
    /// canonical post-epoch state on the next epoch.
    PlanAheadInvalidated {
        /// Staged bundles that were discarded (requested but unconsumed).
        staged: usize,
    },
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryEvent::Fault(FaultEvent::AllocFailure {
                step,
                requested,
                kind,
            }) => {
                let kind = match kind {
                    AllocFaultKind::Spurious => "spurious",
                    AllocFaultKind::StepScheduled => "step-scheduled",
                    AllocFaultKind::CapacityJitter => "capacity-jitter",
                };
                write!(
                    f,
                    "injected {kind} allocation failure at step {step} ({requested} bytes)"
                )
            }
            RecoveryEvent::Fault(FaultEvent::TransferStall {
                transfer_index,
                stall_sec,
            }) => write!(
                f,
                "injected {stall_sec:.3}s stall on transfer {transfer_index}"
            ),
            RecoveryEvent::Fault(FaultEvent::NanLoss { step }) => {
                write!(f, "injected NaN loss at step {step}")
            }
            RecoveryEvent::Fault(FaultEvent::DeviceFail {
                device,
                completed_steps,
            }) => write!(
                f,
                "injected failure of device {device} after {completed_steps} steps"
            ),
            RecoveryEvent::Fault(FaultEvent::LinkStall { round, stall_sec }) => write!(
                f,
                "injected {stall_sec:.3}s stall on all-reduce round {round}"
            ),
            RecoveryEvent::Fault(FaultEvent::StorageIoError { shard, attempt }) => write!(
                f,
                "injected transient read error on shard {shard} (attempt {attempt})"
            ),
            RecoveryEvent::Fault(FaultEvent::StorageStall { shard, stall_sec }) => write!(
                f,
                "injected {stall_sec:.3}s read stall on shard {shard}"
            ),
            RecoveryEvent::Fault(FaultEvent::ShardCorrupted { shard, epoch }) => write!(
                f,
                "injected payload corruption of shard {shard} before epoch {epoch}"
            ),
            RecoveryEvent::IoRetry {
                shard,
                attempt,
                backoff_sec,
            } => write!(
                f,
                "shard {shard} read retry {attempt}: transient I/O error; \
                 backing off {backoff_sec:.3}s"
            ),
            RecoveryEvent::ShardRepaired { shard, group } => write!(
                f,
                "shard {shard} failed CRC mid-run; reconstructed bit-identically \
                 from XOR parity group {group} and re-persisted"
            ),
            RecoveryEvent::CheckpointFallback { skipped, used } => write!(
                f,
                "checkpoint fallback: skipped {} corrupt slot(s) ({}); \
                 restored from {}",
                skipped.len(),
                skipped
                    .iter()
                    .map(|p| p.display().to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                used.display()
            ),
            RecoveryEvent::DeviceLost {
                device,
                completed_steps,
                live_ranks,
            } => write!(
                f,
                "device {device} lost after {completed_steps} completed steps; \
                 {live_ranks} ranks remain"
            ),
            RecoveryEvent::WorkMigrated {
                from_device,
                micro_batches,
                survivors,
            } => write!(
                f,
                "migrated {micro_batches} unfinished micro-batches from device \
                 {from_device} onto {survivors} survivors (LPT re-pack)"
            ),
            RecoveryEvent::RingRebuilt {
                live_ranks,
                allreduce_sec,
            } => write!(
                f,
                "ring all-reduce rebuilt over {live_ranks} ranks \
                 ({:.3} ms sync)",
                allreduce_sec * 1e3
            ),
            RecoveryEvent::StragglerDetected { device, slowdown } => write!(
                f,
                "device {device} flagged as straggler ({slowdown:.2}x the \
                 median time per unit work); degraded but still serving"
            ),
            RecoveryEvent::LinkRetry {
                attempt,
                stall_sec,
                backoff_sec,
            } => write!(
                f,
                "all-reduce retry {attempt}: round timed out ({stall_sec:.3}s \
                 stall); backing off {backoff_sec:.3}s"
            ),
            RecoveryEvent::AnomalyRollback {
                attempt,
                step,
                kind,
                injected,
            } => write!(
                f,
                "anomaly rollback {attempt}: {}{kind} at step {step}; \
                 restored epoch-start snapshot",
                if *injected { "injected " } else { "" }
            ),
            RecoveryEvent::AnomalyAbort {
                rollbacks,
                step,
                kind,
            } => write!(
                f,
                "anomaly budget exhausted after {rollbacks} rollbacks: \
                 {kind} at step {step}"
            ),
            RecoveryEvent::OomRetry {
                attempt,
                step,
                phase,
                injected,
                failed_k,
                next_k,
                planning_capacity,
            } => write!(
                f,
                "retry {attempt}: {}OOM at step {step} ({phase}) with K={failed_k}; \
                 escalating to K≥{next_k} against {planning_capacity} bytes",
                if *injected { "injected " } else { "" }
            ),
            RecoveryEvent::Recovered { attempts, final_k } => {
                write!(f, "recovered after {attempts} retries at K={final_k}")
            }
            RecoveryEvent::Exhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
            RecoveryEvent::PlanAheadInvalidated { staged } => write!(
                f,
                "partition-ahead pipeline invalidated ({staged} staged plans \
                 discarded); replanning synchronously at the escalated K"
            ),
        }
    }
}

/// A [`RecoveryEvent`] stamped with the epoch it occurred in.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEntry {
    /// Epoch the event occurred in (as set by [`RecoveryLog::set_epoch`]).
    pub epoch: usize,
    /// What happened.
    pub event: RecoveryEvent,
}

/// Append-only record of every injected fault and recovery action of a
/// run, surfaced through [`crate::FitReport`] and the bench report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryLog {
    current_epoch: usize,
    entries: Vec<RecoveryEntry>,
}

impl RecoveryLog {
    /// An empty log starting at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the epoch stamped onto subsequently recorded events.
    pub fn set_epoch(&mut self, epoch: usize) {
        self.current_epoch = epoch;
    }

    /// Appends an event at the current epoch.
    pub fn record(&mut self, event: RecoveryEvent) {
        self.entries.push(RecoveryEntry {
            epoch: self.current_epoch,
            event,
        });
    }

    /// Every recorded entry, in order.
    pub fn entries(&self) -> &[RecoveryEntry] {
        &self.entries
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of injected faults observed.
    pub fn injected_faults(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::Fault(_)))
    }

    /// Number of OOM-triggered retries.
    pub fn oom_retries(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::OomRetry { .. }))
    }

    /// Number of epochs that completed only after retrying.
    pub fn recoveries(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::Recovered { .. }))
    }

    /// Number of numeric-anomaly rollbacks.
    pub fn anomaly_rollbacks(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::AnomalyRollback { .. }))
    }

    /// Whether the run aborted on an unrecoverable numeric anomaly.
    pub fn anomaly_aborted(&self) -> bool {
        self.count(|e| matches!(e, RecoveryEvent::AnomalyAbort { .. })) > 0
    }

    /// Whether any epoch ran out of retries.
    pub fn exhausted(&self) -> bool {
        self.count(|e| matches!(e, RecoveryEvent::Exhausted { .. })) > 0
    }

    /// Number of devices declared lost.
    pub fn devices_lost(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::DeviceLost { .. }))
    }

    /// Number of LPT work migrations off lost devices.
    pub fn work_migrations(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::WorkMigrated { .. }))
    }

    /// Number of ring-all-reduce rebuilds over surviving ranks.
    pub fn ring_rebuilds(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::RingRebuilt { .. }))
    }

    /// Number of devices flagged as stragglers.
    pub fn stragglers_detected(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::StragglerDetected { .. }))
    }

    /// Number of timed-out all-reduce rounds retried with backoff.
    pub fn link_retries(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::LinkRetry { .. }))
    }

    /// Number of partition-ahead pipeline invalidations forced by
    /// recovery rollbacks.
    pub fn plan_ahead_invalidations(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::PlanAheadInvalidated { .. }))
    }

    /// Number of transient shard-read failures absorbed by retry/backoff.
    pub fn io_retries(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::IoRetry { .. }))
    }

    /// Number of shards reconstructed from XOR parity mid-run.
    pub fn shards_repaired(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::ShardRepaired { .. }))
    }

    /// Number of resume-time checkpoint fallbacks past corrupt slots.
    pub fn checkpoint_fallbacks(&self) -> usize {
        self.count(|e| matches!(e, RecoveryEvent::CheckpointFallback { .. }))
    }

    fn count(&self, pred: impl Fn(&RecoveryEvent) -> bool) -> usize {
        self.entries.iter().filter(|e| pred(&e.event)).count()
    }

    /// Human-readable multi-line summary (counts, then one line per
    /// entry) — what the CLI prints when a run fails.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "recovery log: {} injected faults, {} OOM retries, \
             {} anomaly rollbacks, {} recoveries{}{}",
            self.injected_faults(),
            self.oom_retries(),
            self.anomaly_rollbacks(),
            self.recoveries(),
            if self.exhausted() {
                ", retries EXHAUSTED"
            } else {
                ""
            },
            if self.anomaly_aborted() {
                ", anomaly ABORT"
            } else {
                ""
            }
        );
        let elastic = (
            self.devices_lost(),
            self.work_migrations(),
            self.link_retries(),
            self.stragglers_detected(),
        );
        if elastic != (0, 0, 0, 0) {
            out.push_str(&format!(
                "\nelastic: {} devices lost, {} work migrations, \
                 {} link retries, {} stragglers",
                elastic.0, elastic.1, elastic.2, elastic.3
            ));
        }
        let storage = (
            self.io_retries(),
            self.shards_repaired(),
            self.checkpoint_fallbacks(),
        );
        if storage != (0, 0, 0) {
            out.push_str(&format!(
                "\nstorage: {} I/O retries, {} shards repaired, \
                 {} checkpoint fallbacks",
                storage.0, storage.1, storage.2
            ));
        }
        for entry in &self.entries {
            out.push_str(&format!("\n  [epoch {}] {}", entry.epoch, entry.event));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        RetryPolicy::default().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let shrink = RetryPolicy {
            growth: 0.5,
            ..RetryPolicy::default()
        };
        assert!(shrink.validate().unwrap_err().contains("growth"));
        let all_headroom = RetryPolicy {
            headroom: 1.0,
            ..RetryPolicy::default()
        };
        assert!(all_headroom.validate().unwrap_err().contains("headroom"));
    }

    #[test]
    fn escalation_always_strictly_increases() {
        let unit_growth = RetryPolicy {
            growth: 1.0,
            ..RetryPolicy::default()
        };
        assert_eq!(unit_growth.escalate_k(1), 2);
        assert_eq!(unit_growth.escalate_k(7), 8);
        let double = RetryPolicy::default();
        assert_eq!(double.escalate_k(1), 2);
        assert_eq!(double.escalate_k(3), 6);
    }

    #[test]
    fn planning_capacity_compounds_and_stays_positive() {
        let p = RetryPolicy {
            headroom: 0.5,
            ..RetryPolicy::default()
        };
        assert_eq!(p.planning_capacity(1000, 0), 1000);
        assert_eq!(p.planning_capacity(1000, 1), 500);
        assert_eq!(p.planning_capacity(1000, 2), 250);
        assert_eq!(p.planning_capacity(0, 5), 1, "never hands the planner 0");
    }

    #[test]
    fn log_counts_and_summarizes() {
        let mut log = RecoveryLog::new();
        assert!(log.is_empty());
        log.record(RecoveryEvent::Fault(FaultEvent::AllocFailure {
            step: 0,
            requested: 64,
            kind: AllocFaultKind::StepScheduled,
        }));
        log.record(RecoveryEvent::OomRetry {
            attempt: 1,
            step: 0,
            phase: StepPhase::StaticCharge,
            injected: true,
            failed_k: 1,
            next_k: 2,
            planning_capacity: 900,
        });
        log.set_epoch(1);
        log.record(RecoveryEvent::Recovered {
            attempts: 1,
            final_k: 2,
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.injected_faults(), 1);
        assert_eq!(log.oom_retries(), 1);
        assert_eq!(log.recoveries(), 1);
        assert!(!log.exhausted());
        assert_eq!(log.entries()[2].epoch, 1);
        let summary = log.summary();
        assert!(summary.contains("1 OOM retries"), "{summary}");
        assert!(summary.contains("[epoch 0]"), "{summary}");
        assert!(summary.contains("escalating to K≥2"), "{summary}");
    }

    #[test]
    fn exhaustion_is_flagged() {
        let mut log = RecoveryLog::new();
        log.record(RecoveryEvent::Exhausted { attempts: 3 });
        assert!(log.exhausted());
        assert!(log.summary().contains("EXHAUSTED"));
    }

    #[test]
    fn elastic_events_are_counted_and_summarized() {
        let mut log = RecoveryLog::new();
        log.record(RecoveryEvent::Fault(FaultEvent::DeviceFail {
            device: 1,
            completed_steps: 2,
        }));
        log.record(RecoveryEvent::DeviceLost {
            device: 1,
            completed_steps: 2,
            live_ranks: 3,
        });
        log.record(RecoveryEvent::WorkMigrated {
            from_device: 1,
            micro_batches: 4,
            survivors: 3,
        });
        log.record(RecoveryEvent::RingRebuilt {
            live_ranks: 3,
            allreduce_sec: 0.0015,
        });
        log.record(RecoveryEvent::StragglerDetected {
            device: 2,
            slowdown: 2.5,
        });
        log.record(RecoveryEvent::LinkRetry {
            attempt: 1,
            stall_sec: 0.5,
            backoff_sec: 0.05,
        });
        assert_eq!(log.devices_lost(), 1);
        assert_eq!(log.work_migrations(), 1);
        assert_eq!(log.ring_rebuilds(), 1);
        assert_eq!(log.stragglers_detected(), 1);
        assert_eq!(log.link_retries(), 1);
        assert_eq!(log.injected_faults(), 1);
        let summary = log.summary();
        assert!(
            summary.contains("1 devices lost, 1 work migrations, 1 link retries, 1 stragglers"),
            "{summary}"
        );
        assert!(summary.contains("device 1 lost after 2 completed steps"), "{summary}");
        assert!(summary.contains("migrated 4 unfinished micro-batches"), "{summary}");
        assert!(summary.contains("rebuilt over 3 ranks"), "{summary}");
        assert!(summary.contains("flagged as straggler"), "{summary}");
        assert!(summary.contains("all-reduce retry 1"), "{summary}");
    }

    #[test]
    fn storage_events_are_counted_and_summarized() {
        let mut log = RecoveryLog::new();
        log.record(RecoveryEvent::Fault(FaultEvent::StorageIoError {
            shard: 3,
            attempt: 1,
        }));
        log.record(RecoveryEvent::IoRetry {
            shard: 3,
            attempt: 1,
            backoff_sec: 0.005,
        });
        log.record(RecoveryEvent::Fault(FaultEvent::ShardCorrupted {
            shard: 2,
            epoch: 1,
        }));
        log.record(RecoveryEvent::ShardRepaired { shard: 2, group: 1 });
        log.record(RecoveryEvent::CheckpointFallback {
            skipped: vec!["/ck/ckpt-000009.btc".into()],
            used: "/ck/ckpt-000007.btc".into(),
        });
        assert_eq!(log.io_retries(), 1);
        assert_eq!(log.shards_repaired(), 1);
        assert_eq!(log.checkpoint_fallbacks(), 1);
        assert_eq!(log.injected_faults(), 2);
        let summary = log.summary();
        assert!(
            summary.contains("storage: 1 I/O retries, 1 shards repaired, 1 checkpoint fallbacks"),
            "{summary}"
        );
        assert!(summary.contains("shard 3 read retry 1"), "{summary}");
        assert!(
            summary.contains("reconstructed bit-identically from XOR parity group 1"),
            "{summary}"
        );
        assert!(summary.contains("restored from /ck/ckpt-000007.btc"), "{summary}");
    }

    #[test]
    fn anomaly_events_are_counted_and_summarized() {
        let mut log = RecoveryLog::new();
        log.record(RecoveryEvent::Fault(FaultEvent::NanLoss { step: 4 }));
        log.record(RecoveryEvent::AnomalyRollback {
            attempt: 1,
            step: 4,
            kind: AnomalyKind::NonFiniteLoss,
            injected: true,
        });
        log.record(RecoveryEvent::AnomalyAbort {
            rollbacks: 1,
            step: 4,
            kind: AnomalyKind::NonFiniteLoss,
        });
        assert_eq!(log.anomaly_rollbacks(), 1);
        assert!(log.anomaly_aborted());
        assert_eq!(log.injected_faults(), 1);
        let summary = log.summary();
        assert!(summary.contains("1 anomaly rollbacks"), "{summary}");
        assert!(summary.contains("anomaly ABORT"), "{summary}");
        assert!(summary.contains("injected NaN loss at step 4"), "{summary}");
        assert!(
            summary.contains("injected non-finite loss at step 4"),
            "{summary}"
        );
    }
}

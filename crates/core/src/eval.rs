//! Model evaluation: sampled inference and accuracy.

use rand::RngCore;

use betty_data::Dataset;
use betty_graph::{sample_batch_in, CsrGraph, NodeId};
use betty_nn::{GnnModel, Session};
use betty_tensor::segment;

/// Predicts class labels for `nodes` by sampled inference.
///
/// Nodes are processed in chunks of `chunk_size` to bound memory;
/// `fanouts` bounds neighborhood expansion per layer (one entry per model
/// layer). Dropout is disabled.
///
/// **Chunk-size caveat:** `rng` is drawn per chunk, so whenever a fanout
/// actually truncates a neighborhood the sampled neighbor sets — and
/// therefore individual predictions — can differ across `chunk_size`
/// choices (the *distribution* is unchanged, only the draw order). With
/// full fanouts (`usize::MAX` everywhere) no random draw happens and
/// predictions are exactly chunk-size invariant. Use
/// [`predict_full_graph`] when exact, sampling-free inference is
/// required.
///
/// # Panics
///
/// Panics if `fanouts.len()` differs from the model's layer count or
/// `chunk_size == 0`.
pub fn predict(
    model: &dyn GnnModel,
    dataset: &Dataset,
    nodes: &[NodeId],
    fanouts: &[usize],
    chunk_size: usize,
    mut rng: &mut dyn RngCore,
) -> Vec<usize> {
    assert_eq!(
        fanouts.len(),
        model.num_layers(),
        "one fanout per model layer"
    );
    assert!(chunk_size > 0, "chunk_size must be positive");
    let in_graph: CsrGraph = dataset.graph.reverse();
    let mut predictions = Vec::with_capacity(nodes.len());
    for chunk in nodes.chunks(chunk_size) {
        // `&mut rng` makes the generic parameter the sized `&mut dyn
        // RngCore` rather than the unsized `dyn RngCore`.
        let batch = sample_batch_in(&in_graph, chunk, fanouts, &mut rng);
        let input_idx: Vec<usize> = batch.input_nodes().iter().map(|&v| v as usize).collect();
        let feats = dataset.features.gather_rows(&input_idx);
        let mut sess = Session::new();
        let x = sess.graph.leaf(feats);
        let logits = model.forward(&mut sess, batch.blocks(), x, false, rng);
        predictions.extend(sess.graph.value(logits).argmax_rows());
    }
    predictions
}

/// Exact layer-wise full-graph inference.
///
/// Computes layer `i`'s output for *every* node (in chunks of `chunk_size`
/// destinations, each with its complete in-neighborhood) before starting
/// layer `i + 1` — the standard way to evaluate sampled-trained GNNs
/// without sampling bias, and the inference analogue of Betty's
/// memory-bounded execution: peak memory is governed by the chunk size,
/// not the graph.
///
/// Returns the predicted class of every node in the graph.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn predict_full_graph(
    model: &dyn GnnModel,
    dataset: &Dataset,
    chunk_size: usize,
) -> Vec<usize> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n = dataset.num_nodes();
    let in_graph = dataset.graph.reverse();
    // Layer 0 reads the raw features; densifying once keeps the layer
    // loop backend-agnostic (inference is out of the training hot path).
    let mut h = dataset.features.to_dense();
    for layer in 0..model.num_layers() {
        let out_dim = if layer + 1 == model.num_layers() {
            model.num_classes()
        } else {
            model.hidden_dim()
        };
        let mut next = betty_tensor::Tensor::zeros(&[n, out_dim]);
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk_size).min(n);
            let dst: Vec<NodeId> = (start as NodeId..end as NodeId).collect();
            let edges: Vec<(NodeId, NodeId)> = dst
                .iter()
                .flat_map(|&v| in_graph.neighbors(v).iter().map(move |&u| (u, v)))
                .collect();
            let block = betty_graph::Block::new(dst, &edges);
            let idx: Vec<usize> = block.src_globals().iter().map(|&v| v as usize).collect();
            let mut sess = Session::new();
            let x = sess.graph.leaf(segment::gather_rows(&h, &idx));
            let out = model.forward_layer(&mut sess, layer, &block, x);
            let out_t = sess.graph.value(out);
            let nd = next.data_mut();
            for (row, &global) in block.dst_globals().iter().enumerate() {
                let g = global as usize;
                nd[g * out_dim..(g + 1) * out_dim].copy_from_slice(out_t.row(row));
            }
            start = end;
        }
        h = next;
    }
    h.argmax_rows()
}

/// Accuracy of [`predict_full_graph`] on a node subset.
pub fn accuracy_full_graph(
    model: &dyn GnnModel,
    dataset: &Dataset,
    nodes: &[NodeId],
    chunk_size: usize,
) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let preds = predict_full_graph(model, dataset, chunk_size);
    let correct = nodes
        .iter()
        .filter(|&&v| preds[v as usize] == dataset.labels[v as usize])
        .count();
    correct as f64 / nodes.len() as f64
}

/// Fraction of `nodes` whose prediction matches the dataset label.
///
/// # Panics
///
/// Same conditions as [`predict`]; returns 0.0 for an empty node list.
pub fn accuracy(
    model: &dyn GnnModel,
    dataset: &Dataset,
    nodes: &[NodeId],
    fanouts: &[usize],
    rng: &mut dyn RngCore,
) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let preds = predict(model, dataset, nodes, fanouts, 1024, rng);
    let correct = preds
        .iter()
        .zip(nodes)
        .filter(|&(&p, &v)| p == dataset.labels[v as usize])
        .count();
    correct as f64 / nodes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_data::DatasetSpec;
    use betty_nn::{AggregatorSpec, GraphSage};
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    #[test]
    fn untrained_model_predicts_in_range() {
        let ds = DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(8)
            .generate(2);
        let mut rng = Pcg64Mcg::seed_from_u64(0);
        let model = GraphSage::new(8, 8, ds.num_classes, 2, AggregatorSpec::Mean, 0.0, &mut rng);
        let nodes: Vec<_> = ds.val_idx.iter().copied().take(30).collect();
        let preds = predict(&model, &ds, &nodes, &[3, 3], 16, &mut rng);
        assert_eq!(preds.len(), 30);
        assert!(preds.iter().all(|&p| p < ds.num_classes));
        let acc = accuracy(&model, &ds, &nodes, &[3, 3], &mut rng);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn full_graph_inference_matches_full_neighborhood_sampling() {
        // With fanout = ∞ both paths compute the exact same function.
        let ds = DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(8)
            .generate(4);
        let mut rng = Pcg64Mcg::seed_from_u64(1);
        let model =
            GraphSage::new(8, 8, ds.num_classes, 2, AggregatorSpec::Mean, 0.0, &mut rng);
        let nodes: Vec<_> = ds.test_idx.iter().copied().take(25).collect();
        let sampled = predict(
            &model,
            &ds,
            &nodes,
            &[usize::MAX, usize::MAX],
            16,
            &mut rng,
        );
        let full = predict_full_graph(&model, &ds, 64);
        for (&node, &s) in nodes.iter().zip(&sampled) {
            assert_eq!(full[node as usize], s, "node {node} disagrees");
        }
    }

    #[test]
    fn full_graph_inference_chunk_size_invariant() {
        let ds = DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(8)
            .generate(4);
        let mut rng = Pcg64Mcg::seed_from_u64(2);
        let model =
            GraphSage::new(8, 8, ds.num_classes, 2, AggregatorSpec::Mean, 0.0, &mut rng);
        let a = predict_full_graph(&model, &ds, 7);
        let b = predict_full_graph(&model, &ds, 1000);
        assert_eq!(a, b);
        let acc = accuracy_full_graph(&model, &ds, &ds.test_idx, 64);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn sampled_predict_chunk_size_invariant_under_full_fanout() {
        // With full fanouts the sampler keeps every in-edge and consumes
        // no randomness, so chunking must not change any prediction —
        // the intended behaviour `predict`'s caveat pins down. (With
        // truncating fanouts the per-chunk RNG draw order makes
        // predictions legitimately chunk-size dependent.)
        let ds = DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(8)
            .generate(4);
        let mut rng = Pcg64Mcg::seed_from_u64(3);
        let model =
            GraphSage::new(8, 8, ds.num_classes, 2, AggregatorSpec::Mean, 0.0, &mut rng);
        let nodes: Vec<_> = ds.val_idx.iter().copied().take(30).collect();
        let fanouts = [usize::MAX, usize::MAX];
        let mut per_chunk_size = Vec::new();
        for chunk_size in [1, 7, 30, 1000] {
            let mut eval_rng = Pcg64Mcg::seed_from_u64(9);
            per_chunk_size.push(predict(&model, &ds, &nodes, &fanouts, chunk_size, &mut eval_rng));
        }
        for other in &per_chunk_size[1..] {
            assert_eq!(&per_chunk_size[0], other);
        }
    }

    #[test]
    fn empty_nodes_give_zero_accuracy() {
        let ds = DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(8)
            .generate(2);
        let mut rng = Pcg64Mcg::seed_from_u64(0);
        let model = GraphSage::new(8, 8, ds.num_classes, 1, AggregatorSpec::Mean, 0.0, &mut rng);
        assert_eq!(accuracy(&model, &ds, &[], &[3], &mut rng), 0.0);
    }
}

//! Slice sampling helpers (the used subset of `rand::seq`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, from the end, matching
    /// `rand 0.8`'s iteration order).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (the whole slice, in
    /// random order, when `amount >= len`).
    fn choose_multiple<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'a, Self::Item>;
}

/// Iterator over elements picked by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: std::vec::IntoIter<usize>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.indices.next().map(|i| &self.slice[i])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.indices.size_hint()
    }
}

impl<'a, T> ExactSizeIterator for SliceChooseIter<'a, T> {}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }

    fn choose_multiple<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'a, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index table: `amount` distinct
        // positions, each uniform over the remainder.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + gen_index(rng, self.len() - i);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        SliceChooseIter {
            slice: self,
            indices: indices.into_iter(),
        }
    }
}

fn gen_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    rng.gen_range(0..bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    // A tiny splitmix-style generator for the tests.
    struct Mix(u64);
    impl crate::RngCore for Mix {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
    impl SeedableRng for Mix {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Mix(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Mix::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_is_distinct_subset() {
        let v: Vec<u32> = (0..20).collect();
        let mut rng = Mix::seed_from_u64(2);
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 7).copied().collect();
        assert_eq!(picked.len(), 7);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 7, "duplicates in {picked:?}");
    }

    #[test]
    fn choose_multiple_caps_at_len() {
        let v = [1, 2, 3];
        let mut rng = Mix::seed_from_u64(3);
        assert_eq!(v.choose_multiple(&mut rng, 10).count(), 3);
    }

    #[test]
    fn choose_empty_is_none() {
        let v: [u8; 0] = [];
        let mut rng = Mix::seed_from_u64(4);
        assert!(v.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mut a: Vec<u32> = (0..30).collect();
        let mut b: Vec<u32> = (0..30).collect();
        a.shuffle(&mut Mix::seed_from_u64(9));
        b.shuffle(&mut Mix::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

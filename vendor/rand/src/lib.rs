//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access and no
//! crates-io mirror, so the handful of `rand` APIs the workspace uses are
//! reimplemented here and wired in via a path dependency. The semantics
//! match `rand 0.8` where the workspace depends on them:
//!
//! * [`RngCore`] / [`SeedableRng`] with the `rand_core 0.6` default
//!   `seed_from_u64` (PCG32-based seed expansion), so seeds produce the
//!   same generator state as upstream.
//! * [`Rng::gen_range`] over integer and float ranges (Lemire-style
//!   unbiased integer sampling, 24/53-bit float sampling).
//! * [`seq::SliceRandom`]: `shuffle`, `choose`, `choose_multiple`.
//!
//! Only determinism *within this workspace* is load-bearing: every
//! consumer seeds its generators explicitly and tests only compare runs
//! against other runs of the same binary.

pub mod seq;

/// A random number generator core: the object-safe part of the API.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with the same
    /// PCG32-based mix as `rand_core 0.6`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce from raw bits.
pub trait Standard: Sized {
    /// Samples one value from the "standard" distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased integer sampling in `[0, range)` via Lemire's widening
/// multiply with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let threshold = range.wrapping_neg() % range;
    loop {
        let v = rng.next_u64();
        let wide = (v as u128) * (range as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let span = (high as i128 - low as i128) as u64;
                let offset = uniform_u64(rng, span);
                ((low as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let u = f32::sample_standard(rng);
        low + u * (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let u = f64::sample_standard(rng);
        low + u * (high - low)
    }
}

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_f32_is_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = Counter(9);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen::<f32>();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = Counter(5);
        for _ in 0..200 {
            let v = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&v));
        }
    }
}

//! Offline stand-in for `serde_json`.
//!
//! Provides the value-tree subset the workspace uses to emit experiment
//! reports: [`Value`], [`Map`], the [`json!`] macro for object literals,
//! and [`to_string_pretty`]. No serde derive integration — values are
//! built explicitly. Keys serialize in sorted order (`Map` is a
//! `BTreeMap`, unlike upstream's insertion-ordered map).

use std::fmt;

/// Object map type. Upstream preserves insertion order; this stand-in
/// sorts keys, which is stable and good enough for report files.
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

/// Conversion into a [`Value`], by reference — what [`json!`] uses so
/// object literals can cite fields of a borrowed `self`.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Builds a [`Value`] from an object literal or any [`ToJson`] expression.
///
/// Supports the forms the workspace uses:
/// `json!({ "key": expr, ... })`, `json!([expr, ...])`, `json!(expr)`.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map: $crate::Map<::std::string::String, $crate::Value> =
            $crate::Map::new();
        $( map.insert($key.to_string(), $crate::ToJson::to_json(&$val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&$val) ),* ])
    };
    (null) => {
        $crate::Value::Null
    };
    ($other:expr) => {
        $crate::ToJson::to_json(&$other)
    };
}

/// Serialization error. This stand-in never actually fails, but keeps the
/// upstream `Result` signature so call sites are source-compatible.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Pretty-prints with 2-space indentation, like upstream.
pub fn to_string_pretty<T: ToJson>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), 0);
    Ok(out)
}

/// Compact single-line serialization.
pub fn to_string<T: ToJson>(value: &T) -> Result<String, Error> {
    Ok(compact(&value.to_json()))
}

fn compact(v: &Value) -> String {
    let mut out = String::new();
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&compact(item));
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(&mut out, k);
                out.push(':');
                out.push_str(&compact(val));
            }
            out.push('}');
        }
        scalar => write_value(&mut out, scalar, 0),
    }
    out
}

fn write_value(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                indent(out, depth + 1);
                write_value(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; upstream errors here, we degrade to null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_literal_macro() {
        let id = String::from("exp1");
        let rows = vec![Value::String("r".into())];
        let doc = json!({
            "id": id,
            "title": "Title",
            "rows": rows,
        });
        match &doc {
            Value::Object(m) => {
                assert_eq!(m["id"], Value::String("exp1".into()));
                assert_eq!(m["title"], Value::String("Title".into()));
                assert_eq!(
                    m["rows"],
                    Value::Array(vec![Value::String("r".into())])
                );
            }
            other => panic!("expected object, got {other:?}"),
        }
        // `id` was borrowed, not moved.
        assert_eq!(id, "exp1");
    }

    #[test]
    fn pretty_output_shape() {
        let doc = json!({ "b": 2usize, "a": "x\"y" });
        let s = to_string_pretty(&doc).unwrap();
        assert_eq!(s, "{\n  \"a\": \"x\\\"y\",\n  \"b\": 2\n}");
    }

    #[test]
    fn numbers_render_integers_without_decimal() {
        let mut s = String::new();
        write_number(&mut s, 3.0);
        assert_eq!(s, "3");
        s.clear();
        write_number(&mut s, 3.25);
        assert_eq!(s, "3.25");
        s.clear();
        write_number(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn map_collects_from_iterator() {
        let obj: Map<String, Value> = [("k".to_string(), Value::Null)]
            .into_iter()
            .collect();
        assert_eq!(to_string(&Value::Object(obj)).unwrap(), "{\"k\":null}");
    }

    #[test]
    fn array_and_scalar_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(
            json!([1usize, 2usize]),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
    }
}

//! Collection strategies (`vec`) and the size specification they take.

use std::ops::Range;

use rand::Rng;
use rand_pcg::Pcg64Mcg;

use crate::strategy::Strategy;

/// Number of elements to generate: either exact or a half-open range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut Pcg64Mcg) -> Vec<S::Value> {
        let len = if self.size.max_exclusive <= self.size.min + 1 {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max_exclusive)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_size() {
        let mut rng = Pcg64Mcg::seed_from_u64(0);
        let v = vec(0usize..10, 6).new_value(&mut rng);
        assert_eq!(v.len(), 6);
        assert!(v.iter().all(|&x| x < 10));
    }

    #[test]
    fn ranged_size() {
        let mut rng = Pcg64Mcg::seed_from_u64(0);
        let strat = vec(0usize..10, 3..9);
        for _ in 0..50 {
            let v = strat.new_value(&mut rng);
            assert!((3..9).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn empty_range_degenerates_to_min() {
        let mut rng = Pcg64Mcg::seed_from_u64(0);
        let v = vec(0usize..10, 4..4).new_value(&mut rng);
        assert_eq!(v.len(), 4);
    }
}

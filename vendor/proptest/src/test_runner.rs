//! Test-run configuration and deterministic per-case generators.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

/// Subset of upstream's `ProptestConfig`: only `cases` is honored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Generator for one case of one property: seeded from a stable hash of
/// the test name mixed with the case index, so every run of every process
/// draws the same inputs (`DefaultHasher::new` uses fixed keys).
pub fn case_rng(test_name: &str, case: u32) -> Pcg64Mcg {
    let mut hasher = DefaultHasher::new();
    test_name.hash(&mut hasher);
    let name_hash = hasher.finish();
    let mixed =
        name_hash ^ (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    Pcg64Mcg::seed_from_u64(mixed)
}

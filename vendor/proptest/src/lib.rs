//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's
//! property tests use, backed by plain seeded random sampling:
//! range/tuple/`Just`/`collection::vec` strategies, `prop_map` /
//! `prop_flat_map`, `ProptestConfig::with_cases`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports its case index and panics;
//! * cases are drawn from a generator seeded by a stable hash of the
//!   test name, so runs are deterministic across processes;
//! * `prop_assert*` are plain `assert*` passthroughs (they panic rather
//!   than returning `Err`).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(binding in strategy, ...) { .. }`
/// expands to a `#[test]`-able function that draws `cases` samples.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(
                        stringify!($name),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @body ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Passthrough to `assert!` (upstream returns `Err`; we panic).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Passthrough to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Passthrough to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(v in 5usize..25, f in -1.0f32..1.0) {
            prop_assert!((5..25).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_threads_dependency((n, k) in arb_pair()) {
            prop_assert!(k < n);
        }

        #[test]
        fn vec_strategy_sizes(
            exact in crate::collection::vec(0usize..3, 7),
            ranged in crate::collection::vec(0usize..3, 2..5),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
        }

        #[test]
        fn map_applies(x in (0usize..4).prop_map(|v| v * 10)) {
            prop_assert!(x % 10 == 0);
            prop_assert!(x < 40);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::case_rng("t", 4);
        let _ = c.next_u64(); // different case: just must not panic
    }
}

//! Value-generation strategies: the sampling core of the stand-in.

use std::marker::PhantomData;
use std::ops::Range;

use rand::{Rng, SampleUniform};
use rand_pcg::Pcg64Mcg;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream (which builds shrinkable value trees), a strategy here
/// is just a sampler: `new_value` draws one value from the given
/// generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut Pcg64Mcg) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            f,
            _out: PhantomData,
        }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F, S>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            f,
            _out: PhantomData,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F, O> {
    source: S,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut Pcg64Mcg) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, T> {
    source: S,
    f: F,
    _out: PhantomData<fn() -> T>,
}

impl<S, F, T> Strategy for FlatMap<S, F, T>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut Pcg64Mcg) -> T::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut Pcg64Mcg) -> T {
        self.0.clone()
    }
}

/// Half-open ranges sample uniformly (integers unbiased, floats by
/// scaling a unit sample).
impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut Pcg64Mcg) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut Pcg64Mcg) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tuple_of_ranges_samples_each_component() {
        let mut rng = Pcg64Mcg::seed_from_u64(1);
        let strat = (0u32..5, 10u32..20);
        for _ in 0..100 {
            let (a, b) = strat.new_value(&mut rng);
            assert!(a < 5);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = Pcg64Mcg::seed_from_u64(2);
        let s = Just(vec![1, 2, 3]);
        assert_eq!(s.new_value(&mut rng), vec![1, 2, 3]);
        assert_eq!(s.new_value(&mut rng), vec![1, 2, 3]);
    }
}

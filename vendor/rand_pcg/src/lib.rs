//! Offline stand-in for `rand_pcg`, implementing [`Pcg64Mcg`]
//! (PCG XSL-RR 128/64 MCG) with the same state transition, output
//! function, and seeding as the upstream crate — so explicit seeds
//! reproduce the upstream sequences bit-for-bit.

use rand::{RngCore, SeedableRng};

const MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// PCG 128-bit multiplicative congruential generator with XSL-RR output,
/// aka `Mcg128Xsl64` — the workspace's only generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64Mcg {
    state: u128,
}

/// Alias matching the upstream type name.
pub type Mcg128Xsl64 = Pcg64Mcg;

impl Pcg64Mcg {
    /// Constructs from a raw state; MCG state must be odd, so the low bit
    /// is forced (as upstream does).
    pub fn new(state: u128) -> Self {
        Self { state: state | 1 }
    }

    /// The raw generator state, for durable serialization. MCG states are
    /// always odd, so `Pcg64Mcg::new(rng.state())` reproduces the stream
    /// exactly.
    pub fn state(&self) -> u128 {
        self.state
    }
}

impl SeedableRng for Pcg64Mcg {
    type Seed = [u8; 16];

    fn from_seed(seed: Self::Seed) -> Self {
        Pcg64Mcg::new(u128::from_le_bytes(seed))
    }
}

#[inline]
fn output_xsl_rr(state: u128) -> u64 {
    let rot = (state >> 122) as u32;
    let xsl = ((state >> 64) as u64) ^ (state as u64);
    xsl.rotate_right(rot)
}

impl RngCore for Pcg64Mcg {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(MULTIPLIER);
        output_xsl_rr(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reference_sequence_from_raw_state() {
        // First outputs of Mcg128Xsl64 seeded with state 42 (computed from
        // the PCG reference definition: advance then output XSL-RR).
        let mut rng = Pcg64Mcg::new(42);
        let first = rng.next_u64();
        let mut again = Pcg64Mcg::new(42);
        assert_eq!(first, again.next_u64(), "determinism");
        // State transition is the 128-bit MCG multiply.
        let mut manual = 42u128 | 1;
        manual = manual.wrapping_mul(MULTIPLIER);
        assert_eq!(first, output_xsl_rr(manual));
    }

    #[test]
    fn seed_from_u64_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Pcg64Mcg::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Pcg64Mcg::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Pcg64Mcg::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn state_roundtrips_through_new() {
        let mut rng = Pcg64Mcg::seed_from_u64(9);
        rng.next_u64();
        let mut revived = Pcg64Mcg::new(rng.state());
        assert_eq!(rng, revived);
        assert_eq!(rng.next_u64(), revived.next_u64());
    }

    #[test]
    fn clone_preserves_stream() {
        let mut rng = Pcg64Mcg::seed_from_u64(5);
        rng.next_u64();
        let mut snap = rng.clone();
        assert_eq!(rng.next_u64(), snap.next_u64());
        assert_eq!(rng, snap);
    }

    #[test]
    fn drives_rand_frontend() {
        let mut rng = Pcg64Mcg::seed_from_u64(11);
        let v = rng.gen_range(0usize..100);
        assert!(v < 100);
        let f: f32 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Pcg64Mcg::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

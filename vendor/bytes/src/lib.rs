//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's binary (de)serializers use:
//! [`BytesMut`] as an append-only write buffer ([`BufMut`]) and
//! [`Bytes`] as a consuming read cursor ([`Buf`] plus `split_to`).
//! Backed by a plain `Vec<u8>`; no shared-ownership optimizations.

use std::ops::Deref;

/// Read-side buffer operations. Getters consume from the front and panic
/// on underflow, matching the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Discards the next `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

/// Write-side buffer operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Splits off and returns the first `n` unread bytes, advancing this
    /// buffer past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "split_to out of bounds");
        let out = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Bytes { data: out, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance out of bounds");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_f32() {
        let mut w = BytesMut::new();
        w.put_u32_le(0xDEADBEEF);
        w.put_f32_le(1.5);
        w.put_u16_le(0xBEAD);
        w.put_slice(b"xy");
        let mut r = Bytes::from(w.as_ref().to_vec());
        assert_eq!(r.remaining(), 12);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u16_le(), 0xBEAD);
        assert_eq!(&r[..], b"xy");
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(b.remaining(), 6);
        assert_eq!(&b[..], b" world");
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        Bytes::from(vec![1, 2]).split_to(3);
    }

    #[test]
    fn deref_matches_written() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        assert_eq!(&w[..], &[7]);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn freeze_then_read() {
        let mut w = BytesMut::with_capacity(8);
        w.put_u64_le(42);
        let mut r = w.freeze();
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.remaining(), 0);
    }
}

//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace's benches use — `Criterion`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (both the plain and the
//! named-field forms). Instead of statistical sampling it times a fixed
//! number of iterations and prints the mean, which is enough to run the
//! benches and eyeball relative cost without any plotting dependencies.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// How batched inputs are grouped. Accepted for API compatibility; this
/// stand-in regenerates the input every iteration regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Benchmark driver. Each `bench_function` call runs its closure once,
/// which in turn times `sample_size` iterations of the routine.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            total: Duration::ZERO,
            timed_iters: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.timed_iters > 0 {
            bencher.total.as_nanos() / bencher.timed_iters as u128
        } else {
            0
        };
        println!(
            "bench {id:<40} {mean_ns:>12} ns/iter ({} iters)",
            bencher.timed_iters
        );
        self
    }
}

/// Times the routine passed by the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total: Duration,
    timed_iters: u64,
}

impl Bencher {
    /// Times `iters` runs of `routine` back to back.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.timed_iters += self.iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.timed_iters += 1;
        }
    }
}

/// Defines a benchmark group function. Supports both the positional form
/// `criterion_group!(name, target, ...)` and the named-field form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_target(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| 2 + 2));
    }

    criterion_group! {
        name = group_named;
        config = Criterion::default().sample_size(4);
        targets = trivial_target
    }

    criterion_group!(group_plain, trivial_target);

    #[test]
    fn both_group_forms_run() {
        group_named();
        group_plain();
    }

    #[test]
    fn sample_size_sets_iteration_count() {
        let mut c = Criterion::default().sample_size(4);
        let mut calls = 0u64;
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(3);
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 3);
        assert_eq!(runs, 3);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(7u32), 7);
    }
}

//! Offline stand-in for `serde`.
//!
//! The workspace declares a `serde` dependency (with the `derive`
//! feature) but never actually derives or calls into it — JSON output
//! goes through the vendored `serde_json` value API directly. This crate
//! exists so manifests resolve offline; the traits are name-compatible
//! markers.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}

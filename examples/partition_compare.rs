//! Compares the four batch-partitioning strategies of the paper — range,
//! random, Metis-like, and Betty's REG — on one sampled batch: input-node
//! redundancy, estimated peak memory, and epoch time.
//!
//! ```sh
//! cargo run --release --bin partition_compare
//! ```

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_data::DatasetSpec;
use betty_device::gib;
use betty_nn::AggregatorSpec;
use betty_partition::input_redundancy;

fn main() {
    let dataset = DatasetSpec::ogbn_arxiv()
        .scaled(0.02)
        .with_feature_dim(32)
        .generate(4);
    let config = ExperimentConfig {
        fanouts: vec![10, 25],
        hidden_dim: 32,
        aggregator: AggregatorSpec::Mean,
        capacity_bytes: gib(8),
        dropout: 0.0,
        ..ExperimentConfig::default()
    };
    let k = 8;
    println!(
        "dataset {}: {} train nodes, partitioned into K = {k} micro-batches\n",
        dataset.name,
        dataset.train_idx.len()
    );
    println!(
        "{:<10} {:>14} {:>12} {:>14} {:>12}",
        "strategy", "input nodes", "redundancy", "est peak MiB", "epoch sec"
    );

    for strategy in StrategyKind::ALL {
        let mut runner = Runner::new(&dataset, &config, 0);
        let batch = runner.sample_full_batch(&dataset);
        let plan = runner.plan_fixed(&batch, strategy, k);
        let report = input_redundancy(&plan.micro_batches);
        let stats = runner
            .train_micro_batches(&dataset, &plan.micro_batches)
            .expect("8 GiB is ample");
        println!(
            "{:<10} {:>14} {:>11.3}x {:>14.1} {:>12.3}",
            strategy.name(),
            report.total_input_nodes,
            report.redundancy_ratio(),
            plan.max_estimated_peak() as f64 / (1 << 20) as f64,
            stats.total_sec()
        );
    }
    println!(
        "\nBetty's REG partitioning minimizes duplicated input nodes, which \
         shrinks both the peak memory and the per-epoch work (§6.4–6.5)."
    );
}

//! Deep aggregation enabled by Betty: a 4-layer GraphSAGE whose full batch
//! exceeds the device, trained by growing K until the plan fits
//! (Fig. 2b → Fig. 10b).
//!
//! ```sh
//! cargo run --release --bin deep_sage
//! ```

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_data::DatasetSpec;
use betty_nn::AggregatorSpec;

fn main() {
    let dataset = DatasetSpec::pubmed()
        .scaled(0.05)
        .with_feature_dim(32)
        .generate(2);
    println!(
        "dataset {}: {} nodes, {} train nodes",
        dataset.name,
        dataset.graph.num_nodes(),
        dataset.train_idx.len()
    );

    // Depth sweep mirroring Fig. 2(b): fanouts (10, 25, 30, 40).
    let paper_fanouts = [10usize, 25, 30, 40];
    for depth in 2..=4 {
        let config = ExperimentConfig {
            fanouts: paper_fanouts[..depth].to_vec(),
            hidden_dim: 32,
            aggregator: AggregatorSpec::Mean,
            dropout: 0.0,
            capacity_bytes: 96 << 20, // a deliberately small 96 MiB device
            ..ExperimentConfig::default()
        };
        let mut runner = Runner::new(&dataset, &config, 0);
        let batch = runner.sample_full_batch(&dataset);
        let full_peak = runner
            .plan_fixed(&batch, StrategyKind::Betty, 1)
            .max_estimated_peak();
        match runner.train_epoch_auto(&dataset, StrategyKind::Betty) {
            Ok((stats, k)) => println!(
                "{depth}-layer SAGE: full batch needs {:>7.1} MiB {} capacity → K = {k:>3}, \
                 measured peak {:>6.1} MiB, loss {:.3}",
                full_peak as f64 / (1 << 20) as f64,
                if full_peak > config.capacity_bytes { ">" } else { "≤" },
                stats.max_peak_bytes as f64 / (1 << 20) as f64,
                stats.loss,
            ),
            Err(e) => println!("{depth}-layer SAGE: {e}"),
        }
    }
    println!(
        "\nDeeper aggregation multiplies the bipartite stack's size; Betty keeps \
         the peak under the device capacity by raising the micro-batch count."
    );
}

//! The memory wall, in miniature: a training configuration that OOMs on
//! the simulated device when run as one batch, rescued by Betty's
//! memory-aware batch-level partitioning (the Fig. 2 → Fig. 10 story).
//!
//! ```sh
//! cargo run --release --bin memory_wall
//! ```

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_data::DatasetSpec;
use betty_nn::AggregatorSpec;

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

fn main() {
    let dataset = DatasetSpec::ogbn_arxiv()
        .scaled(0.02)
        .with_feature_dim(64)
        .generate(1);
    println!(
        "dataset {}: {} nodes, {} train nodes",
        dataset.name,
        dataset.graph.num_nodes(),
        dataset.train_idx.len()
    );

    // The memory-hungry configuration: LSTM aggregator (Fig. 2a).
    let base = ExperimentConfig {
        fanouts: vec![10, 25],
        hidden_dim: 64,
        aggregator: AggregatorSpec::Lstm,
        dropout: 0.0,
        ..ExperimentConfig::default()
    };

    // How much would one full batch need?
    let mut probe = Runner::new(&dataset, &base, 0);
    let batch = probe.sample_full_batch(&dataset);
    let full_need = probe
        .plan_fixed(&batch, StrategyKind::Betty, 1)
        .max_estimated_peak();
    println!("estimated full-batch peak: {:.1} MiB", mib(full_need));

    // Give the device half of that: the full batch cannot fit.
    let capacity = full_need / 2;
    let config = ExperimentConfig {
        capacity_bytes: capacity,
        ..base
    };
    println!("device capacity:           {:.1} MiB\n", mib(capacity));

    let mut naive = Runner::new(&dataset, &config, 0);
    match naive.train_epoch_betty(&dataset, StrategyKind::Betty, 1) {
        Err(e) => {
            println!("full-batch training: {e}");
        }
        Ok(_) => println!("full-batch training unexpectedly fit"),
    }

    let mut betty = Runner::new(&dataset, &config, 0);
    match betty.train_epoch_auto(&dataset, StrategyKind::Betty) {
        Ok((stats, k)) => {
            println!(
                "betty (memory-aware):  trained with K = {k} micro-batches, \
                 measured peak {:.1} MiB ≤ capacity {:.1} MiB, loss {:.4}",
                mib(stats.max_peak_bytes),
                mib(capacity),
                stats.loss
            );
            println!(
                "heterogeneous memory:  {:.1} MiB staged host-side (features + \
                 blocks), only one micro-batch resident on the device at a time",
                mib(stats.host_bytes)
            );
        }
        Err(e) => println!("betty failed: {e}"),
    }
}

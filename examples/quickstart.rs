//! Quickstart: train GraphSAGE on a Cora-like graph with Betty's
//! micro-batch partitioning, then evaluate.
//!
//! ```sh
//! cargo run --release --bin quickstart
//! ```

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_data::DatasetSpec;
use betty_device::gib;
use betty_nn::AggregatorSpec;

fn main() {
    // A Cora-scale synthetic graph (see betty-data for why synthetic).
    let dataset = DatasetSpec::cora().scaled(0.5).with_feature_dim(64).generate(7);
    println!(
        "dataset {}: {} nodes, {} edges, {} classes, {} train nodes",
        dataset.name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes,
        dataset.train_idx.len()
    );

    let config = ExperimentConfig {
        fanouts: vec![10, 25],
        hidden_dim: 32,
        aggregator: AggregatorSpec::Mean,
        capacity_bytes: gib(2),
        dropout: 0.1,
        ..ExperimentConfig::default()
    };
    let mut runner = Runner::new(&dataset, &config, 0);

    // Betty chooses K automatically from the memory estimate.
    println!("\n{:>5} {:>10} {:>4} {:>12} {:>10}", "epoch", "loss", "K", "peak MiB", "val acc");
    for epoch in 0..20 {
        let (stats, k) = runner
            .train_epoch_auto(&dataset, StrategyKind::Betty)
            .expect("memory-aware planning fits the device");
        if epoch % 4 == 0 || epoch == 19 {
            let val = runner.evaluate(&dataset, &dataset.val_idx);
            println!(
                "{epoch:>5} {:>10.4} {k:>4} {:>12.1} {:>9.1}%",
                stats.loss,
                stats.max_peak_bytes as f64 / (1 << 20) as f64,
                val * 100.0
            );
        }
    }

    let test = runner.evaluate(&dataset, &dataset.test_idx);
    println!("\nfinal test accuracy: {:.1}%", test * 100.0);
}

//! Simulated multi-GPU scaling (the paper's §7 future work): Betty's
//! micro-batches are data-parallel by construction, so a device group can
//! split one batch's micro-batches and all-reduce gradients — numerically
//! identical to single-device training.
//!
//! ```sh
//! cargo run --release --bin multi_gpu
//! ```

use betty::{DeviceGroup, ExperimentConfig, Runner, StrategyKind};
use betty_data::DatasetSpec;
use betty_device::gib;
use betty_nn::AggregatorSpec;

fn main() {
    let dataset = DatasetSpec::ogbn_arxiv()
        .scaled(0.02)
        .with_feature_dim(64)
        .generate(3);
    let config = ExperimentConfig {
        fanouts: vec![10, 25],
        hidden_dim: 64,
        aggregator: AggregatorSpec::Lstm, // heavy enough to be worth splitting
        dropout: 0.0,
        capacity_bytes: gib(24),
        ..ExperimentConfig::default()
    };
    let k = 16;
    println!(
        "dataset {}: {} train nodes, K = {k} micro-batches\n",
        dataset.name,
        dataset.train_idx.len()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14}",
        "devices", "wall sec", "speedup", "sync ms", "per-dev MiB"
    );
    for devices in [1usize, 2, 4, 8] {
        let mut runner = Runner::new(&dataset, &config, 0);
        let epoch = runner
            .train_epoch_multi_device(&dataset, StrategyKind::Betty, k, &DeviceGroup::new(devices))
            .expect("24 GiB is ample");
        println!(
            "{devices:>8} {:>10.3} {:>11.2}x {:>12.3} {:>14.1}",
            epoch.wall_sec(),
            epoch.speedup_vs_serial(),
            epoch.allreduce_sec * 1e3,
            epoch.max_device_peak() as f64 / (1 << 20) as f64,
        );
    }
    println!(
        "\nGradients all-reduce to exactly the single-device accumulation, so \
         accuracy and convergence are untouched; wall time scales with the \
         slowest device's micro-batch queue."
    );
}
